//! The typed audit-event model.
//!
//! Every observable state change in a stream engine — a served batch, a
//! drift alert, a repair attempt, a model swap, a checkpoint, a label
//! join, a backpressure drop — is one [`TelemetryEvent`]. Events that
//! advance the fairness window carry the **per-cell counter deltas**
//! ([`CounterDelta`], one per group cell) alongside the resulting
//! [`SnapshotData`], which is what makes the audit trail *replayable*:
//! accumulating the deltas and re-deriving each snapshot through
//! [`SnapshotData::from_counters`] reproduces the live run's readings
//! exactly (see [`crate::replay()`]). Alert events additionally carry an
//! [`AlertExplanation`] naming the cell that moved — per the FEAMOE /
//! subgroup-drift observation that "an alert fired" is not auditable
//! evidence; *which distribution moved, and by how much*, is.
//!
//! This crate deliberately owns the snapshot arithmetic:
//! `cf-stream`'s `FairnessSnapshot::from_counts` delegates to
//! [`SnapshotData::from_counters`], so a replayed snapshot and a live one
//! are computed by the *same* code path and byte-identical serialisation
//! is a structural guarantee, not a test-enforced coincidence.

use serde::{Deserialize, Error, Serialize, Value};

/// Per-group windowed counters, mirroring the stream window's group cell.
/// Decision-plane fields (`total`, `selected`, `violations`) advance as
/// tuples are served; label-plane fields advance as ground truth joins.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WindowCounters {
    /// Tuples of this group currently in the decision ring.
    pub total: u64,
    /// Tuples with decision 1 (selected).
    pub selected: u64,
    /// Tuples violating their reference conformance constraints.
    pub violations: u64,
    /// Joined `(decision, label)` pairs in the label plane.
    pub labeled: u64,
    /// Label-positive pairs among `labeled`.
    pub label_positive: u64,
    /// Selected among label-positive pairs (windowed true positives).
    pub true_positive: u64,
    /// Selected among label-negative pairs (windowed false positives).
    pub false_positive: u64,
}

/// Signed change of one group cell's [`WindowCounters`] across an event
/// (evictions from a full window make deltas genuinely negative).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterDelta {
    /// Change in `total`.
    pub total: i64,
    /// Change in `selected`.
    pub selected: i64,
    /// Change in `violations`.
    pub violations: i64,
    /// Change in `labeled`.
    pub labeled: i64,
    /// Change in `label_positive`.
    pub label_positive: i64,
    /// Change in `true_positive`.
    pub true_positive: i64,
    /// Change in `false_positive`.
    pub false_positive: i64,
}

impl CounterDelta {
    /// Whether every field is zero (the event left this cell untouched).
    pub fn is_zero(&self) -> bool {
        *self == CounterDelta::default()
    }
}

impl WindowCounters {
    /// The signed per-field change from `earlier` to `self`.
    pub fn delta_from(&self, earlier: &WindowCounters) -> CounterDelta {
        let d = |a: u64, b: u64| a.wrapping_sub(b) as i64;
        CounterDelta {
            total: d(self.total, earlier.total),
            selected: d(self.selected, earlier.selected),
            violations: d(self.violations, earlier.violations),
            labeled: d(self.labeled, earlier.labeled),
            label_positive: d(self.label_positive, earlier.label_positive),
            true_positive: d(self.true_positive, earlier.true_positive),
            false_positive: d(self.false_positive, earlier.false_positive),
        }
    }

    /// Apply a signed delta; `None` if any counter would go negative
    /// (a corrupt or truncated audit log).
    pub fn apply(&self, delta: &CounterDelta) -> Option<WindowCounters> {
        Some(WindowCounters {
            total: self.total.checked_add_signed(delta.total)?,
            selected: self.selected.checked_add_signed(delta.selected)?,
            violations: self.violations.checked_add_signed(delta.violations)?,
            labeled: self.labeled.checked_add_signed(delta.labeled)?,
            label_positive: self
                .label_positive
                .checked_add_signed(delta.label_positive)?,
            true_positive: self.true_positive.checked_add_signed(delta.true_positive)?,
            false_positive: self
                .false_positive
                .checked_add_signed(delta.false_positive)?,
        })
    }

    /// Windowed selection rate `P(ŷ=1 | g)` (decision plane).
    pub fn selection_rate(&self) -> Option<f64> {
        (self.total > 0).then(|| self.selected as f64 / self.total as f64)
    }

    /// Windowed conformance-violation rate (decision plane).
    pub fn violation_rate(&self) -> Option<f64> {
        (self.total > 0).then(|| self.violations as f64 / self.total as f64)
    }

    /// Windowed true-positive rate over joined pairs; `None` until a
    /// positive label has joined.
    pub fn tpr(&self) -> Option<f64> {
        (self.label_positive > 0).then(|| self.true_positive as f64 / self.label_positive as f64)
    }
}

/// A point-in-time fairness reading derived from K group cells — the
/// serialisable twin of `cf-stream`'s `FairnessSnapshot`, and the single
/// home of its arithmetic. Cell-indexed fields are K-length, indexed by
/// group id (the classic binary layout is `[majority, minority]`);
/// `None` marks an empty denominator, never a fabricated 0. The scalar
/// fairness readings are **worst-pair** statistics: the ordered cell
/// pair whose symmetrised disparate impact is smallest, which at K=2
/// degenerates to exactly the binary formulas.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SnapshotData {
    /// Tuples in the window when the snapshot was taken.
    pub window_len: u64,
    /// Windowed selection rate per cell.
    pub selection_rate: Vec<Option<f64>>,
    /// Raw disparate impact `SR_j / SR_i` of the worst ordered pair
    /// `(i, j)`, `i < j` (∞ when `SR_i = 0`, `SR_j > 0`). At K=2 this is
    /// the classic `SR_U / SR_W`.
    pub disparate_impact: Option<f64>,
    /// Worst-pair symmetrised `DI* = min(DI, 1/DI)` — 1.0 is perfectly
    /// fair; the EEOC floor applies to this reading.
    pub di_star: Option<f64>,
    /// Largest selection-rate gap over defined cells,
    /// `max_i SR_i − min_i SR_i` (at K=2: `|SR_W − SR_U|`).
    pub demographic_parity_gap: Option<f64>,
    /// Largest TPR gap over cells with joined positive labels (equal
    /// opportunity; at K=2: `|TPR_W − TPR_U|`).
    pub equal_opportunity_gap: Option<f64>,
    /// Windowed conformance-violation rate per cell (decision plane).
    pub violation_rate: Vec<Option<f64>>,
    /// Joined `(decision, label)` pairs per cell in the label plane.
    pub labeled: Vec<u64>,
    /// The DI* floor this stream is held to (EEOC four-fifths: 0.8).
    pub di_floor: f64,
}

/// Raw and symmetrised disparate impact of one ordered cell pair, with
/// cell `i`'s rate as the reference: `(SR_j / SR_i, min(DI, 1/DI))`.
/// `SR_i = 0` with `SR_j > 0` is infinite raw DI (star 0); neither cell
/// selecting is vacuously balanced (raw 1, star 1).
fn pair_disparate_impact(sr_i: f64, sr_j: f64) -> (f64, f64) {
    let raw = if sr_i > 0.0 {
        sr_j / sr_i
    } else if sr_j > 0.0 {
        f64::INFINITY
    } else {
        // Neither cell selected: vacuously balanced.
        1.0
    };
    let star = if raw <= 0.0 || raw.is_infinite() {
        0.0
    } else {
        raw.min(1.0 / raw)
    };
    (raw, star)
}

/// `max − min` over an iterator of readings; `None` with fewer than two.
fn spread(rates: impl Iterator<Item = f64>) -> Option<f64> {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    let mut n = 0usize;
    for r in rates {
        lo = lo.min(r);
        hi = hi.max(r);
        n += 1;
    }
    (n >= 2).then_some(hi - lo)
}

impl SnapshotData {
    /// Assemble the reading from K group cells. O(K²) over the cell
    /// pairs, O(1) at any fixed K. This is the arithmetic `cf-stream`
    /// delegates to, so live and replayed snapshots are computed
    /// identically by construction.
    pub fn from_counters(counts: &[WindowCounters], di_floor: f64) -> Self {
        let sr: Vec<Option<f64>> = counts.iter().map(WindowCounters::selection_rate).collect();
        let (disparate_impact, di_star) = match worst_pair_of(&sr) {
            Some((i, j)) => {
                let (raw, star) = pair_disparate_impact(sr[i].unwrap(), sr[j].unwrap());
                (Some(raw), Some(star))
            }
            None => (None, None),
        };
        let demographic_parity_gap = spread(sr.iter().filter_map(|r| *r));
        let equal_opportunity_gap = spread(counts.iter().filter_map(WindowCounters::tpr));
        SnapshotData {
            window_len: counts.iter().map(|c| c.total).sum(),
            selection_rate: sr,
            disparate_impact,
            di_star,
            demographic_parity_gap,
            equal_opportunity_gap,
            violation_rate: counts.iter().map(WindowCounters::violation_rate).collect(),
            labeled: counts.iter().map(|c| c.labeled).collect(),
            di_floor,
        }
    }

    /// The ordered cell pair `(i, j)`, `i < j`, whose symmetrised DI is
    /// worst (smallest), over pairs where both selection rates are
    /// defined; ties break to the lexicographically first pair. `None`
    /// when fewer than two cells have a defined rate — a K=1 stream has
    /// no pairs and reports `None`, never a fabricated reading.
    pub fn worst_pair(counts: &[WindowCounters]) -> Option<(usize, usize)> {
        let sr: Vec<Option<f64>> = counts.iter().map(WindowCounters::selection_rate).collect();
        worst_pair_of(&sr)
    }

    /// The cell the worst pair disadvantages: the one with the lower
    /// selection rate (ties go to the higher-indexed cell, matching the
    /// binary engine's "minority unless strictly better" convention).
    /// `None` when [`Self::worst_pair`] is `None`.
    pub fn disadvantaged_cell(counts: &[WindowCounters]) -> Option<usize> {
        let (i, j) = Self::worst_pair(counts)?;
        let (sr_i, sr_j) = (
            counts[i].selection_rate().unwrap(),
            counts[j].selection_rate().unwrap(),
        );
        Some(if sr_j <= sr_i { j } else { i })
    }
}

fn worst_pair_of(sr: &[Option<f64>]) -> Option<(usize, usize)> {
    let mut worst: Option<((usize, usize), f64)> = None;
    for i in 0..sr.len() {
        let Some(sr_i) = sr[i] else { continue };
        for (j, sr_j) in sr.iter().enumerate().skip(i + 1) {
            let Some(sr_j) = *sr_j else { continue };
            let (_, star) = pair_disparate_impact(sr_i, sr_j);
            if worst.is_none_or(|(_, s)| star < s) {
                worst = Some(((i, j), star));
            }
        }
    }
    worst.map(|(pair, _)| pair)
}

/// A drift alert as recorded in the audit trail (the serialisable twin of
/// `cf-stream`'s `DriftAlert`; `kind` carries that enum's wire string).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlertData {
    /// Alert kind wire string (`"conformance_violation"` or
    /// `"disparate_impact_floor"`).
    pub kind: String,
    /// Group cell the detector attributes the drift to.
    pub group: u8,
    /// Stream position (tuples observed) when the alert fired.
    pub at_tuple: u64,
    /// The detector statistic that crossed its threshold.
    pub statistic: f64,
    /// The threshold it crossed.
    pub threshold: f64,
}

/// Which cell moved, and by how much — the explanation shipped alongside
/// every alert so the audit record says more than "an alert fired".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlertExplanation {
    /// The `(group, plane)` cell the detector attributes the move to,
    /// e.g. `"group=1/decision"`.
    pub cell: String,
    /// Windowed selection rate per cell at alert time (K-length).
    pub selection_rate: Vec<Option<f64>>,
    /// Windowed conformance-violation rate per cell at alert time.
    pub violation_rate: Vec<Option<f64>>,
    /// Human-readable one-line account of the move.
    pub summary: String,
}

/// One served micro-batch folded into the monitor: the window's per-cell
/// deltas plus the resulting reading.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IngestBatchEvent {
    /// Stream id of the batch's first tuple.
    pub first_id: u64,
    /// Tuples in the batch.
    pub batch: u64,
    /// Total tuples observed after this batch.
    pub at_tuple: u64,
    /// The DI* floor in force.
    pub di_floor: f64,
    /// Signed per-cell counter change this batch caused (index = group).
    pub delta: Vec<CounterDelta>,
    /// The fairness reading after the batch.
    pub snapshot: SnapshotData,
}

/// A drift alert, with the moved-cell explanation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriftAlertEvent {
    /// Total tuples observed when the alert fired.
    pub at_tuple: u64,
    /// The alert itself.
    pub alert: AlertData,
    /// Which cell moved, and by how much.
    pub explanation: AlertExplanation,
}

/// A repair (retrain) attempt is starting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RepairStartEvent {
    /// Total tuples observed when the repair started.
    pub at_tuple: u64,
    /// Repair tier (currently always `"confair_retrain"`).
    pub tier: String,
    /// Window occupancy feeding the repair.
    pub window_len: u64,
    /// Labeled pairs available to train on.
    pub labeled: u64,
}

/// A repair (retrain) attempt finished.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RepairEndEvent {
    /// Total tuples observed when the repair ended.
    pub at_tuple: u64,
    /// Repair tier (matches the paired [`RepairStartEvent`]).
    pub tier: String,
    /// `"retrained"` on success, `"failed"` otherwise.
    pub outcome: String,
    /// The failure message, when `outcome == "failed"`.
    pub error: Option<String>,
    /// Wall-clock duration of the attempt, in microseconds.
    pub duration_us: u64,
    /// Cumulative successful retrains after this attempt.
    pub retrains: u64,
}

/// The repair ladder moved a serve-time decision threshold: tier 1
/// nudged one cell's margin cutoff (the usual producer), and the event
/// records the **full** per-cell threshold vector after the change so a
/// trail reader never has to integrate deltas to know the serving
/// boundary in force. Not an alert — threshold motion is the repair
/// working, not a new incident.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThresholdChangeEvent {
    /// Total tuples observed when the threshold moved.
    pub at_tuple: u64,
    /// Active repair tier that moved it (e.g. `"threshold_nudge"`).
    pub tier: String,
    /// The group cell whose cutoff moved.
    pub cell: u8,
    /// The complete per-cell threshold vector now in force (index =
    /// group cell id; `decision = margin >= thresholds[cell]`).
    pub thresholds: Vec<f64>,
}

/// A replacement predictor was published to the serving path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelSwapEvent {
    /// Total tuples observed when the swap happened.
    pub at_tuple: u64,
    /// Cumulative successful retrains (the swapped-in model's generation).
    pub retrains: u64,
}

/// A checkpoint was taken from — or restored into — an engine. A
/// `"restored"` event carries the absolute counters the restored window
/// starts from, so replay can re-anchor mid-log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CheckpointEvent {
    /// Total tuples observed at the checkpoint boundary.
    pub at_tuple: u64,
    /// `"taken"` or `"restored"`.
    pub phase: String,
    /// The checkpoint format version.
    pub version: u32,
    /// Absolute per-cell window counters at the boundary (K-length).
    pub counters: Vec<WindowCounters>,
    /// The DI* floor in force.
    pub di_floor: f64,
}

/// A batch of late ground truth joined the label plane.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeedbackJoinEvent {
    /// Total tuples observed when the feedback was applied.
    pub at_tuple: u64,
    /// Feedback records in the batch.
    pub records: u64,
    /// Records whose label joined (in-window or late).
    pub joined: u64,
    /// Subset of `joined` served from the pending-join index.
    pub joined_late: u64,
    /// Records for already-labeled tuples, ignored.
    pub duplicates: u64,
    /// Records whose tuple could not be found.
    pub unmatched: u64,
    /// The DI* floor in force.
    pub di_floor: f64,
    /// Signed per-cell counter change the joins caused (index = group).
    pub delta: Vec<CounterDelta>,
    /// The fairness reading after the joins.
    pub snapshot: SnapshotData,
}

/// Records were dropped under backpressure (async engines only). Counts
/// are cumulative for the engine, so consecutive events show growth and
/// the final event states the total loss.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DropEvent {
    /// Total tuples the monitor had observed when the drop was detected
    /// (detection happens on the monitor thread, so this trails the
    /// serving clock by the queue depth).
    pub at_tuple: u64,
    /// Cumulative batches dropped.
    pub batches: u64,
    /// Cumulative tuples dropped.
    pub tuples: u64,
}

/// A supervisor respawned a dead monitor thread from its last coherent
/// clone. The event makes the recovery *auditable*: `gap_tuples` names
/// exactly how many served tuples the restored monitor lineage will
/// never observe, and the absolute `counters` re-anchor a replay the
/// same way a `"restored"` checkpoint does — deltas after the restart
/// apply to the resumed window, not to whatever the dead incarnation
/// last logged.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MonitorRestartEvent {
    /// The resumed clone's stream position (tuples it had observed when
    /// it was taken).
    pub at_tuple: u64,
    /// Cumulative monitor restarts for this engine, including this one.
    pub restarts: u64,
    /// Tuples served but permanently unmonitored because of this death
    /// (scored after the clone, consumed or skipped before the respawn).
    pub gap_tuples: u64,
    /// The resumed clone's tuple-id clock; monitoring resumes at this id.
    pub resumed_from: u64,
    /// Absolute per-cell window counters of the resumed clone (the
    /// replay re-anchor; K-length).
    pub counters: Vec<WindowCounters>,
    /// The DI* floor in force.
    pub di_floor: f64,
    /// Whether the resumed clone was in degraded mode. A death rolls
    /// engine state — including the degraded flag — back to the clone,
    /// so this re-anchors the trail's degraded reading the same way
    /// `counters` re-anchors the window.
    pub degraded: bool,
}

/// The engine entered (`entered == true`) or recovered from degraded
/// mode: an on-alert repair episode exhausted its retry/timeout budget,
/// so the stale model keeps serving until a later repair succeeds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegradedModeEvent {
    /// Total tuples observed at the transition.
    pub at_tuple: u64,
    /// `true` when entering degraded mode, `false` when a successful
    /// retrain cleared it.
    pub entered: bool,
    /// Retrain attempts the failing episode burned (0 on recovery).
    pub attempts: u64,
    /// The final attempt's failure, when entering.
    pub error: Option<String>,
    /// Cumulative successful retrains at the transition.
    pub retrains: u64,
}

/// One observable state change in a stream engine. Serialises as a JSON
/// object whose `"event"` field is the [`kind`](TelemetryEvent::kind) tag
/// and whose remaining fields are the variant's payload, flattened.
#[derive(Debug, Clone, PartialEq)]
pub enum TelemetryEvent {
    /// A served micro-batch was folded into the monitor.
    IngestBatch(IngestBatchEvent),
    /// A drift detector fired.
    DriftAlert(DriftAlertEvent),
    /// A repair attempt started.
    RepairStart(RepairStartEvent),
    /// A repair attempt finished.
    RepairEnd(RepairEndEvent),
    /// The repair ladder moved a serve-time decision threshold.
    ThresholdChange(ThresholdChangeEvent),
    /// A replacement predictor was published.
    ModelSwap(ModelSwapEvent),
    /// A checkpoint was taken or restored.
    Checkpoint(CheckpointEvent),
    /// Late ground truth joined the label plane.
    FeedbackJoin(FeedbackJoinEvent),
    /// Records were dropped under backpressure.
    Drop(DropEvent),
    /// A supervisor respawned a dead monitor thread.
    MonitorRestart(MonitorRestartEvent),
    /// The engine entered or left degraded mode.
    DegradedMode(DegradedModeEvent),
}

impl TelemetryEvent {
    /// The wire tag naming this event's variant.
    pub fn kind(&self) -> &'static str {
        match self {
            TelemetryEvent::IngestBatch(_) => "ingest_batch",
            TelemetryEvent::DriftAlert(_) => "drift_alert",
            TelemetryEvent::RepairStart(_) => "repair_start",
            TelemetryEvent::RepairEnd(_) => "repair_end",
            TelemetryEvent::ThresholdChange(_) => "threshold_change",
            TelemetryEvent::ModelSwap(_) => "model_swap",
            TelemetryEvent::Checkpoint(_) => "checkpoint",
            TelemetryEvent::FeedbackJoin(_) => "feedback_join",
            TelemetryEvent::Drop(_) => "drop",
            TelemetryEvent::MonitorRestart(_) => "monitor_restart",
            TelemetryEvent::DegradedMode(_) => "degraded_mode",
        }
    }

    /// Whether this event is operationally critical — a drift alert, a
    /// monitor restart, or a degraded-mode transition. These are the
    /// durability triggers: [`JsonlSink`](crate::JsonlSink) fsyncs after
    /// each one.
    pub fn is_alert(&self) -> bool {
        matches!(
            self,
            TelemetryEvent::DriftAlert(_)
                | TelemetryEvent::MonitorRestart(_)
                | TelemetryEvent::DegradedMode(_)
        )
    }

    /// The monitor's stream position (tuples observed) when the event was
    /// recorded.
    pub fn at_tuple(&self) -> u64 {
        match self {
            TelemetryEvent::IngestBatch(e) => e.at_tuple,
            TelemetryEvent::DriftAlert(e) => e.at_tuple,
            TelemetryEvent::RepairStart(e) => e.at_tuple,
            TelemetryEvent::RepairEnd(e) => e.at_tuple,
            TelemetryEvent::ThresholdChange(e) => e.at_tuple,
            TelemetryEvent::ModelSwap(e) => e.at_tuple,
            TelemetryEvent::Checkpoint(e) => e.at_tuple,
            TelemetryEvent::FeedbackJoin(e) => e.at_tuple,
            TelemetryEvent::Drop(e) => e.at_tuple,
            TelemetryEvent::MonitorRestart(e) => e.at_tuple,
            TelemetryEvent::DegradedMode(e) => e.at_tuple,
        }
    }
}

// The derive shim only handles structs, so the enum's tagged-object
// encoding is spelled out by hand (the same pattern `cf-stream` uses for
// `RetrainPolicy` and `DriftKind`): `{"event": <kind>, …payload fields…}`.
impl Serialize for TelemetryEvent {
    fn to_value(&self) -> Value {
        let payload = match self {
            TelemetryEvent::IngestBatch(e) => e.to_value(),
            TelemetryEvent::DriftAlert(e) => e.to_value(),
            TelemetryEvent::RepairStart(e) => e.to_value(),
            TelemetryEvent::RepairEnd(e) => e.to_value(),
            TelemetryEvent::ThresholdChange(e) => e.to_value(),
            TelemetryEvent::ModelSwap(e) => e.to_value(),
            TelemetryEvent::Checkpoint(e) => e.to_value(),
            TelemetryEvent::FeedbackJoin(e) => e.to_value(),
            TelemetryEvent::Drop(e) => e.to_value(),
            TelemetryEvent::MonitorRestart(e) => e.to_value(),
            TelemetryEvent::DegradedMode(e) => e.to_value(),
        };
        let mut fields = vec![("event".to_string(), Value::String(self.kind().to_string()))];
        if let Value::Object(inner) = payload {
            fields.extend(inner);
        }
        Value::Object(fields)
    }
}

impl Deserialize for TelemetryEvent {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let kind = v
            .get_or_err("event")?
            .as_str()
            .ok_or_else(|| Error::msg("event tag must be a string"))?;
        match kind {
            "ingest_batch" => IngestBatchEvent::from_value(v).map(TelemetryEvent::IngestBatch),
            "drift_alert" => DriftAlertEvent::from_value(v).map(TelemetryEvent::DriftAlert),
            "repair_start" => RepairStartEvent::from_value(v).map(TelemetryEvent::RepairStart),
            "repair_end" => RepairEndEvent::from_value(v).map(TelemetryEvent::RepairEnd),
            "threshold_change" => {
                ThresholdChangeEvent::from_value(v).map(TelemetryEvent::ThresholdChange)
            }
            "model_swap" => ModelSwapEvent::from_value(v).map(TelemetryEvent::ModelSwap),
            "checkpoint" => CheckpointEvent::from_value(v).map(TelemetryEvent::Checkpoint),
            "feedback_join" => FeedbackJoinEvent::from_value(v).map(TelemetryEvent::FeedbackJoin),
            "drop" => DropEvent::from_value(v).map(TelemetryEvent::Drop),
            "monitor_restart" => {
                MonitorRestartEvent::from_value(v).map(TelemetryEvent::MonitorRestart)
            }
            "degraded_mode" => DegradedModeEvent::from_value(v).map(TelemetryEvent::DegradedMode),
            other => Err(Error::msg(format!("unknown telemetry event `{other}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_counters() -> [WindowCounters; 2] {
        [
            WindowCounters {
                total: 100,
                selected: 60,
                violations: 3,
                labeled: 80,
                label_positive: 50,
                true_positive: 40,
                false_positive: 10,
            },
            WindowCounters {
                total: 90,
                selected: 30,
                violations: 9,
                labeled: 70,
                label_positive: 40,
                true_positive: 20,
                false_positive: 5,
            },
        ]
    }

    #[test]
    fn delta_round_trips_through_apply() {
        let [before, after] = sample_counters();
        let delta = after.delta_from(&before);
        assert_eq!(before.apply(&delta), Some(after));
        assert_eq!(after.apply(&after.delta_from(&after)), Some(after));
        assert!(after.delta_from(&after).is_zero());
    }

    #[test]
    fn apply_rejects_underflow() {
        let c = WindowCounters::default();
        let delta = CounterDelta {
            total: -1,
            ..CounterDelta::default()
        };
        assert_eq!(c.apply(&delta), None);
    }

    #[test]
    fn snapshot_math_matches_hand_computation() {
        let counts = sample_counters();
        let s = SnapshotData::from_counters(&counts, 0.8);
        assert_eq!(s.window_len, 190);
        let sr_w = 0.6;
        let sr_u = 30.0 / 90.0;
        assert!((s.disparate_impact.unwrap() - sr_u / sr_w).abs() < 1e-15);
        assert!((s.demographic_parity_gap.unwrap() - (sr_w - sr_u).abs()).abs() < 1e-15);
        assert_eq!(s.labeled, vec![80, 70]);
    }

    /// At K=2 the worst-pair arithmetic *is* the binary arithmetic: one
    /// ordered pair `(0, 1)`, raw DI oriented `SR_1 / SR_0`.
    #[test]
    fn k2_worst_pair_is_the_binary_pair() {
        let counts = sample_counters();
        assert_eq!(SnapshotData::worst_pair(&counts), Some((0, 1)));
        assert_eq!(SnapshotData::disadvantaged_cell(&counts), Some(1));
    }

    #[test]
    fn kary_worst_pair_finds_the_most_disparate_cells() {
        let cell = |total: u64, selected: u64| WindowCounters {
            total,
            selected,
            ..WindowCounters::default()
        };
        // SRs: 0.5, 0.4, 0.1, 0.5 → worst pair is (0, 2) (or (3, 2) by
        // ratio, but (0, 2) comes first lexicographically at equal DI*).
        let counts = [cell(100, 50), cell(100, 40), cell(100, 10), cell(100, 50)];
        let s = SnapshotData::from_counters(&counts, 0.8);
        assert_eq!(SnapshotData::worst_pair(&counts), Some((0, 2)));
        assert_eq!(SnapshotData::disadvantaged_cell(&counts), Some(2));
        assert!((s.disparate_impact.unwrap() - 0.2).abs() < 1e-15);
        assert!((s.di_star.unwrap() - 0.2).abs() < 1e-15);
        assert!((s.demographic_parity_gap.unwrap() - 0.4).abs() < 1e-15);
        assert_eq!(s.window_len, 400);
        assert_eq!(s.selection_rate.len(), 4);
    }

    /// A K=1 stream has no pairs: every pairwise reading is `None`,
    /// never a fabricated 0.0.
    #[test]
    fn k1_has_no_pairs_and_reports_none() {
        let counts = [WindowCounters {
            total: 50,
            selected: 20,
            labeled: 10,
            label_positive: 5,
            true_positive: 3,
            ..WindowCounters::default()
        }];
        let s = SnapshotData::from_counters(&counts, 0.8);
        assert_eq!(s.disparate_impact, None);
        assert_eq!(s.di_star, None);
        assert_eq!(s.demographic_parity_gap, None);
        assert_eq!(s.equal_opportunity_gap, None);
        assert_eq!(SnapshotData::worst_pair(&counts), None);
        assert_eq!(SnapshotData::disadvantaged_cell(&counts), None);
        assert_eq!(s.window_len, 50);
    }

    /// Empty cells (no tuples yet) have undefined rates and are skipped
    /// by the pair scan rather than polluting it with zeros.
    #[test]
    fn empty_cells_are_excluded_from_the_pair_scan() {
        let cell = |total: u64, selected: u64| WindowCounters {
            total,
            selected,
            ..WindowCounters::default()
        };
        let counts = [cell(100, 50), cell(0, 0), cell(100, 25), cell(0, 0)];
        let s = SnapshotData::from_counters(&counts, 0.8);
        assert_eq!(SnapshotData::worst_pair(&counts), Some((0, 2)));
        assert!((s.di_star.unwrap() - 0.5).abs() < 1e-15);
        assert_eq!(s.selection_rate[1], None);
        assert_eq!(s.selection_rate[3], None);
    }

    #[test]
    fn events_round_trip_through_json() {
        let counts = sample_counters();
        let snapshot = SnapshotData::from_counters(&counts, 0.8);
        let events = vec![
            TelemetryEvent::IngestBatch(IngestBatchEvent {
                first_id: 0,
                batch: 190,
                at_tuple: 190,
                di_floor: 0.8,
                delta: vec![
                    counts[0].delta_from(&WindowCounters::default()),
                    counts[1].delta_from(&WindowCounters::default()),
                ],
                snapshot: snapshot.clone(),
            }),
            TelemetryEvent::DriftAlert(DriftAlertEvent {
                at_tuple: 190,
                alert: AlertData {
                    kind: "conformance_violation".into(),
                    group: 1,
                    at_tuple: 190,
                    statistic: 13.25,
                    threshold: 12.0,
                },
                explanation: AlertExplanation {
                    cell: "group=1/decision".into(),
                    selection_rate: snapshot.selection_rate.clone(),
                    violation_rate: snapshot.violation_rate.clone(),
                    summary: "violation rate moved".into(),
                },
            }),
            TelemetryEvent::RepairStart(RepairStartEvent {
                at_tuple: 190,
                tier: "confair_retrain".into(),
                window_len: 190,
                labeled: 150,
            }),
            TelemetryEvent::RepairEnd(RepairEndEvent {
                at_tuple: 190,
                tier: "confair_retrain".into(),
                outcome: "failed".into(),
                error: Some("degenerate window".into()),
                duration_us: 421,
                retrains: 0,
            }),
            TelemetryEvent::ThresholdChange(ThresholdChangeEvent {
                at_tuple: 190,
                tier: "threshold_nudge".into(),
                cell: 1,
                thresholds: vec![0.0, -0.15],
            }),
            TelemetryEvent::ModelSwap(ModelSwapEvent {
                at_tuple: 190,
                retrains: 1,
            }),
            TelemetryEvent::Checkpoint(CheckpointEvent {
                at_tuple: 190,
                phase: "taken".into(),
                version: 2,
                counters: counts.to_vec(),
                di_floor: 0.8,
            }),
            TelemetryEvent::FeedbackJoin(FeedbackJoinEvent {
                at_tuple: 190,
                records: 5,
                joined: 3,
                joined_late: 1,
                duplicates: 1,
                unmatched: 1,
                di_floor: 0.8,
                delta: vec![CounterDelta::default(), CounterDelta::default()],
                snapshot,
            }),
            TelemetryEvent::Drop(DropEvent {
                at_tuple: 190,
                batches: 2,
                tuples: 64,
            }),
            TelemetryEvent::MonitorRestart(MonitorRestartEvent {
                at_tuple: 160,
                restarts: 2,
                gap_tuples: 30,
                resumed_from: 160,
                counters: counts.to_vec(),
                di_floor: 0.8,
                degraded: false,
            }),
            TelemetryEvent::DegradedMode(DegradedModeEvent {
                at_tuple: 190,
                entered: true,
                attempts: 3,
                error: Some("injected fault: retrain attempt 2".into()),
                retrains: 1,
            }),
        ];
        for event in events {
            let text = serde_json::to_string(&event).unwrap();
            let back: TelemetryEvent = serde_json::from_str(&text).unwrap();
            assert_eq!(back, event, "round-trip of {}", event.kind());
            assert_eq!(back.kind(), event.kind());
        }
    }

    #[test]
    fn unknown_event_tag_is_rejected() {
        let err = serde_json::from_str::<TelemetryEvent>(r#"{"event":"mystery"}"#);
        assert!(err.is_err());
    }

    #[test]
    fn infinite_di_survives_as_null_then_none() {
        // A snapshot with DI = ∞ serialises the field as null; parsing it
        // back yields `None`. Replay therefore verifies at the Value
        // level, not by comparing parsed structs (see crate::replay).
        let counts = [
            WindowCounters {
                total: 10,
                ..WindowCounters::default()
            },
            WindowCounters {
                total: 10,
                selected: 5,
                ..WindowCounters::default()
            },
        ];
        let s = SnapshotData::from_counters(&counts, 0.8);
        assert_eq!(s.disparate_impact, Some(f64::INFINITY));
        let text = serde_json::to_string(&s).unwrap();
        assert!(text.contains("\"disparate_impact\":null"));
        let back: SnapshotData = serde_json::from_str(&text).unwrap();
        assert_eq!(back.disparate_impact, None);
    }
}
