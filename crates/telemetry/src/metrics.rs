//! A dependency-free metrics registry with Prometheus text export.
//!
//! Three instrument kinds — monotonically increasing [`Counter`]s,
//! settable [`Gauge`]s, and fixed-bucket [`Histogram`]s — registered by
//! name (plus optional labels) on a [`MetricsRegistry`] and exported as
//! the Prometheus text format from [`MetricsRegistry::render`]. Handles
//! are cheap `Arc`-backed clones over atomics: instrument updates are
//! lock-free and safe from any thread (the async engines update gauges
//! from the serving thread while the scrape endpoint renders from
//! another), only registration and rendering take the registry lock.
//!
//! Histograms use *fixed* buckets chosen at registration —
//! [`log2_buckets`] builds the power-of-two ladder the ingest-latency
//! instrument uses — so rendering never rebalances and `observe` stays
//! O(#buckets) with no allocation.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    fn new() -> Self {
        Counter(Arc::new(AtomicU64::new(0)))
    }

    /// Add 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that is *set* to the latest observation (queue
/// backlog, monitor lag, pending labels, …). Stored as `f64` bits.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    fn new() -> Self {
        Gauge(Arc::new(AtomicU64::new(0f64.to_bits())))
    }

    /// Set the gauge.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Set from an integer reading (the common case for backlogs/lags).
    pub fn set_u64(&self, v: u64) {
        self.set(v as f64);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
struct HistogramCore {
    /// Upper bounds of the finite buckets, ascending. An implicit +∞
    /// bucket always follows.
    uppers: Vec<f64>,
    /// Per-bucket observation counts (not cumulative; `render`
    /// accumulates), one slot per finite bound plus the +∞ slot.
    buckets: Vec<AtomicU64>,
    sum_bits: AtomicU64,
    count: AtomicU64,
}

/// A fixed-bucket histogram (e.g. ingest latency in microseconds over a
/// log-scale ladder). `observe` is lock-free; quantiles are estimated by
/// linear interpolation within the owning bucket, the standard
/// Prometheus `histogram_quantile` scheme.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    fn new(mut uppers: Vec<f64>) -> Self {
        uppers.retain(|u| u.is_finite());
        uppers.sort_by(|a, b| a.partial_cmp(b).expect("finite bounds compare"));
        uppers.dedup();
        let buckets = (0..=uppers.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram(Arc::new(HistogramCore {
            uppers,
            buckets,
            sum_bits: AtomicU64::new(0f64.to_bits()),
            count: AtomicU64::new(0),
        }))
    }

    /// Record one observation.
    pub fn observe(&self, v: f64) {
        let core = &self.0;
        let slot = core
            .uppers
            .iter()
            .position(|&upper| v <= upper)
            .unwrap_or(core.uppers.len());
        core.buckets[slot].fetch_add(1, Ordering::Relaxed);
        core.count.fetch_add(1, Ordering::Relaxed);
        // f64 add via CAS on the bit pattern (no atomic float in std).
        let mut current = core.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + v).to_bits();
            match core.sum_bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => current = actual,
            }
        }
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.0.sum_bits.load(Ordering::Relaxed))
    }

    /// Estimate the `q`-quantile (`0 ≤ q ≤ 1`) by linear interpolation
    /// within the owning bucket; `None` before any observation. An
    /// estimate landing in the +∞ bucket reports the largest finite
    /// bound (all the ladder can honestly say).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let core = &self.0;
        let count = core.count.load(Ordering::Relaxed);
        if count == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * count as f64).max(1.0);
        let mut cumulative = 0u64;
        for (slot, bucket) in core.buckets.iter().enumerate() {
            let in_bucket = bucket.load(Ordering::Relaxed);
            if (cumulative + in_bucket) as f64 >= rank && in_bucket > 0 {
                let Some(&upper) = core.uppers.get(slot) else {
                    // +∞ bucket: report the last finite bound.
                    return core.uppers.last().copied();
                };
                let lower = if slot == 0 {
                    0.0
                } else {
                    core.uppers[slot - 1]
                };
                let into = (rank - cumulative as f64) / in_bucket as f64;
                return Some(lower + (upper - lower) * into);
            }
            cumulative += in_bucket;
        }
        core.uppers.last().copied()
    }
}

/// A power-of-two bucket ladder: `start, 2·start, 4·start, …` (`count`
/// bounds). The fixed log-scale ladder the ingest-latency histogram uses:
/// `log2_buckets(1.0, 21)` spans 1 µs to ~1 s.
pub fn log2_buckets(start: f64, count: usize) -> Vec<f64> {
    (0..count as u32)
        .map(|i| start * f64::powi(2.0, i as i32))
        .collect()
}

#[derive(Debug, Clone)]
enum Instrument {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Instrument {
    fn kind(&self) -> &'static str {
        match self {
            Instrument::Counter(_) => "counter",
            Instrument::Gauge(_) => "gauge",
            Instrument::Histogram(_) => "histogram",
        }
    }
}

#[derive(Debug)]
struct Child {
    labels: Vec<(String, String)>,
    instrument: Instrument,
}

#[derive(Debug)]
struct Family {
    name: String,
    help: String,
    children: Vec<Child>,
}

/// The scrape surface: a named collection of instruments rendered as
/// Prometheus text. Registration is idempotent — asking for an existing
/// `(name, labels)` pair returns a handle to the same instrument, so
/// engine halves can register their shared families independently.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    families: Mutex<Vec<Family>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn register(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Instrument,
    ) -> Instrument {
        let labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        let mut families = self.families.lock().expect("metrics registry poisoned");
        let family = match families.iter_mut().find(|f| f.name == name) {
            Some(existing) => existing,
            None => {
                families.push(Family {
                    name: name.to_string(),
                    help: help.to_string(),
                    children: Vec::new(),
                });
                families.last_mut().expect("just pushed")
            }
        };
        if let Some(child) = family.children.iter().find(|c| c.labels == labels) {
            return child.instrument.clone();
        }
        let instrument = make();
        if let Some(existing) = family.children.first() {
            assert_eq!(
                existing.instrument.kind(),
                instrument.kind(),
                "metric family `{name}` registered with conflicting kinds"
            );
        }
        family.children.push(Child {
            labels,
            instrument: instrument.clone(),
        });
        instrument
    }

    /// Register (or look up) an unlabeled counter.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with(name, help, &[])
    }

    /// Register (or look up) a labeled counter.
    ///
    /// # Panics
    /// If `name` is already registered as a different instrument kind.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.register(name, help, labels, || Instrument::Counter(Counter::new())) {
            Instrument::Counter(c) => c,
            other => panic!("metric `{name}` is a {}, not a counter", other.kind()),
        }
    }

    /// Register (or look up) an unlabeled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_with(name, help, &[])
    }

    /// Register (or look up) a labeled gauge.
    ///
    /// # Panics
    /// If `name` is already registered as a different instrument kind.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.register(name, help, labels, || Instrument::Gauge(Gauge::new())) {
            Instrument::Gauge(g) => g,
            other => panic!("metric `{name}` is a {}, not a gauge", other.kind()),
        }
    }

    /// Register (or look up) an unlabeled histogram over fixed bucket
    /// upper bounds (ascending; the +∞ bucket is implicit).
    pub fn histogram(&self, name: &str, help: &str, buckets: Vec<f64>) -> Histogram {
        self.histogram_with(name, help, buckets, &[])
    }

    /// Register (or look up) a labeled histogram.
    ///
    /// # Panics
    /// If `name` is already registered as a different instrument kind.
    pub fn histogram_with(
        &self,
        name: &str,
        help: &str,
        buckets: Vec<f64>,
        labels: &[(&str, &str)],
    ) -> Histogram {
        match self.register(name, help, labels, || {
            Instrument::Histogram(Histogram::new(buckets))
        }) {
            Instrument::Histogram(h) => h,
            other => panic!("metric `{name}` is a {}, not a histogram", other.kind()),
        }
    }

    /// Render every family in the Prometheus text exposition format.
    pub fn render(&self) -> String {
        let families = self.families.lock().expect("metrics registry poisoned");
        let mut out = String::new();
        for family in families.iter() {
            let kind = match family.children.first() {
                Some(child) => child.instrument.kind(),
                None => continue,
            };
            out.push_str(&format!("# HELP {} {}\n", family.name, family.help));
            out.push_str(&format!("# TYPE {} {}\n", family.name, kind));
            for child in &family.children {
                match &child.instrument {
                    Instrument::Counter(c) => {
                        out.push_str(&format!(
                            "{}{} {}\n",
                            family.name,
                            label_set(&child.labels, None),
                            c.get()
                        ));
                    }
                    Instrument::Gauge(g) => {
                        out.push_str(&format!(
                            "{}{} {}\n",
                            family.name,
                            label_set(&child.labels, None),
                            fmt_value(g.get())
                        ));
                    }
                    Instrument::Histogram(h) => {
                        let core = &h.0;
                        let mut cumulative = 0u64;
                        for (slot, upper) in core.uppers.iter().enumerate() {
                            cumulative += core.buckets[slot].load(Ordering::Relaxed);
                            out.push_str(&format!(
                                "{}_bucket{} {}\n",
                                family.name,
                                label_set(&child.labels, Some(&fmt_value(*upper))),
                                cumulative
                            ));
                        }
                        out.push_str(&format!(
                            "{}_bucket{} {}\n",
                            family.name,
                            label_set(&child.labels, Some("+Inf")),
                            h.count()
                        ));
                        out.push_str(&format!(
                            "{}_sum{} {}\n",
                            family.name,
                            label_set(&child.labels, None),
                            fmt_value(h.sum())
                        ));
                        out.push_str(&format!(
                            "{}_count{} {}\n",
                            family.name,
                            label_set(&child.labels, None),
                            h.count()
                        ));
                    }
                }
            }
        }
        out
    }
}

/// Render a `{k="v",…}` label set, optionally with a trailing `le`
/// bucket label; empty when there are no labels at all.
fn label_set(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some(le) = le {
        parts.push(format!("le=\"{le}\""));
    }
    format!("{{{}}}", parts.join(","))
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Prometheus-friendly number: integral values without a trailing `.0`,
/// non-finite as `+Inf`/`-Inf`/`NaN`.
fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else {
        v.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_render() {
        let registry = MetricsRegistry::new();
        let c = registry.counter("cf_ingested_total", "Tuples ingested.");
        c.add(41);
        c.inc();
        let g = registry.gauge_with("cf_lag", "Monitor lag.", &[("shard", "0")]);
        g.set_u64(7);
        let text = registry.render();
        assert!(text.contains("# TYPE cf_ingested_total counter"));
        assert!(text.contains("cf_ingested_total 42"));
        assert!(text.contains("cf_lag{shard=\"0\"} 7"));
    }

    #[test]
    fn registration_is_idempotent_per_name_and_labels() {
        let registry = MetricsRegistry::new();
        let a = registry.counter("cf_x", "x");
        let b = registry.counter("cf_x", "x");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2, "same handle behind both registrations");
        let s0 = registry.gauge_with("cf_y", "y", &[("shard", "0")]);
        let s1 = registry.gauge_with("cf_y", "y", &[("shard", "1")]);
        s0.set(1.0);
        s1.set(2.0);
        let text = registry.render();
        assert!(text.contains("cf_y{shard=\"0\"} 1"));
        assert!(text.contains("cf_y{shard=\"1\"} 2"));
        assert_eq!(text.matches("# TYPE cf_y gauge").count(), 1);
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn kind_conflict_panics() {
        let registry = MetricsRegistry::new();
        registry.counter("cf_conflict", "first");
        registry.gauge("cf_conflict", "second");
    }

    #[test]
    fn histogram_buckets_accumulate_and_render() {
        let registry = MetricsRegistry::new();
        let h = registry.histogram("cf_latency_us", "Ingest latency.", log2_buckets(1.0, 4));
        for v in [0.5, 1.5, 3.0, 100.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 4);
        assert!((h.sum() - 105.0).abs() < 1e-12);
        let text = registry.render();
        assert!(text.contains("cf_latency_us_bucket{le=\"1\"} 1"));
        assert!(text.contains("cf_latency_us_bucket{le=\"2\"} 2"));
        assert!(text.contains("cf_latency_us_bucket{le=\"4\"} 3"));
        assert!(text.contains("cf_latency_us_bucket{le=\"8\"} 3"));
        assert!(text.contains("cf_latency_us_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("cf_latency_us_count 4"));
    }

    #[test]
    fn quantiles_interpolate() {
        let h = Histogram::new(log2_buckets(1.0, 10));
        assert_eq!(h.quantile(0.5), None);
        for _ in 0..100 {
            h.observe(3.0); // lands in the (2, 4] bucket
        }
        let p50 = h.quantile(0.5).unwrap();
        assert!(p50 > 2.0 && p50 <= 4.0, "p50 = {p50}");
        h.observe(1e9); // +∞ bucket
        let p100 = h.quantile(1.0).unwrap();
        assert_eq!(p100, 512.0, "capped at the largest finite bound");
    }

    #[test]
    fn log2_ladder_shape() {
        assert_eq!(log2_buckets(1.0, 4), vec![1.0, 2.0, 4.0, 8.0]);
        assert_eq!(log2_buckets(0.5, 3), vec![0.5, 1.0, 2.0]);
    }
}
