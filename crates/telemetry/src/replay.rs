//! Replay an audit trail back into the run that wrote it.
//!
//! The contract: a JSONL trail written by
//! [`JsonlSink`](crate::JsonlSink) replays into the **byte-identical**
//! snapshot and alert sequence of the live run. [`replay`] does not trust
//! the recorded snapshots — it accumulates each event's per-cell
//! [`CounterDelta`](crate::CounterDelta)s into running
//! [`WindowCounters`] and *recomputes* every
//! reading through [`SnapshotData::from_counters`], the same arithmetic
//! the live engine used. Each recomputed reading is then checked against
//! the recorded one, which makes the trail **self-verifying**: a
//! tampered or truncated log surfaces as [`ReplayError::SnapshotMismatch`]
//! or [`ReplayError::CounterUnderflow`], not as silently wrong output.
//!
//! The check compares JSON [`Value`] trees rather than parsed structs,
//! because JSON cannot carry non-finite floats: a disparate impact of ∞
//! is recorded as `null`, and parsing it back would read `None` where the
//! live run had `Some(∞)`. Normalising the recomputed snapshot's value
//! tree (non-finite → `null`) and comparing at that level sidesteps the
//! asymmetry without weakening the byte-identity claim — the recomputed
//! sequence, serialised, is exactly the recorded bytes.

use crate::event::{AlertData, SnapshotData, TelemetryEvent, WindowCounters};
use serde::{Deserialize, Serialize, Value};
use std::path::Path;

/// Why a trail failed to replay. Every variant names the 1-based JSONL
/// line it arose on.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplayError {
    /// The line is not a well-formed event.
    Parse {
        /// 1-based line number.
        line: u64,
        /// The parser's message.
        message: String,
    },
    /// Applying a delta would drive a window counter negative — the trail
    /// is truncated mid-stream or corrupt.
    CounterUnderflow {
        /// 1-based line number.
        line: u64,
    },
    /// A recomputed snapshot disagrees with the recorded one — the trail
    /// was tampered with, or writer and replayer disagree on arithmetic.
    SnapshotMismatch {
        /// 1-based line number.
        line: u64,
    },
    /// An event carries a different number of group cells than the trail
    /// established — trails from engines with different `K` were spliced.
    CellCountMismatch {
        /// 1-based line number.
        line: u64,
    },
    /// The trail could not be read at all (file-level I/O).
    Io(
        /// The I/O error message.
        String,
    ),
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::Parse { line, message } => {
                write!(f, "audit line {line}: {message}")
            }
            ReplayError::CounterUnderflow { line } => write!(
                f,
                "audit line {line}: delta drives a window counter negative \
                 (trail truncated or corrupt)"
            ),
            ReplayError::SnapshotMismatch { line } => write!(
                f,
                "audit line {line}: recomputed snapshot disagrees with the recorded one \
                 (trail tampered with?)"
            ),
            ReplayError::CellCountMismatch { line } => write!(
                f,
                "audit line {line}: event carries a different group-cell count than \
                 the trail established (trails from different K spliced?)"
            ),
            ReplayError::Io(e) => write!(f, "audit trail unreadable: {e}"),
        }
    }
}

impl std::error::Error for ReplayError {}

/// Everything a replayed trail reconstructs.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ReplayedRun {
    /// The fairness readings, one per window-advancing event
    /// (ingest-batch and feedback-join), in stream order — recomputed
    /// from the deltas and verified against the recorded values.
    pub snapshots: Vec<SnapshotData>,
    /// Every drift alert, in stream order.
    pub alerts: Vec<AlertData>,
    /// The final per-cell window counters — K-length, sized from the
    /// first window-advancing or re-anchoring event in the trail.
    pub counters: Vec<WindowCounters>,
    /// Events processed.
    pub events: u64,
    /// Cumulative tuples lost to backpressure, per the trail's last drop
    /// event (0 when none were recorded).
    pub dropped_tuples: u64,
    /// Cumulative successful retrains, per the trail's last repair-end /
    /// model-swap event.
    pub retrains: u64,
    /// Monitor restarts recorded in the trail.
    pub restarts: u64,
    /// Total tuples the trail explicitly accounts as served-but-never-
    /// monitored, summed over every monitor-restart event's gap.
    pub gap_tuples: u64,
    /// Whether the trail's last degraded-mode transition left the engine
    /// degraded (`false` when none were recorded).
    pub degraded: bool,
}

/// Map non-finite numbers to `Null`, recursively — the projection JSON
/// itself applies when a value tree is written out.
fn normalize(v: Value) -> Value {
    match v {
        Value::Number(n) if !n.is_finite() => Value::Null,
        Value::Array(items) => Value::Array(items.into_iter().map(normalize).collect()),
        Value::Object(fields) => Value::Object(
            fields
                .into_iter()
                .map(|(k, inner)| (k, normalize(inner)))
                .collect(),
        ),
        other => other,
    }
}

/// Apply a window-advancing event's deltas, recompute the reading, and
/// verify it against the recorded value tree. The first such event sizes
/// the accumulator to the trail's cell count K; later events must agree.
fn advance(
    counters: &mut Vec<WindowCounters>,
    delta: &[crate::event::CounterDelta],
    di_floor: f64,
    recorded: Option<&Value>,
    line: u64,
) -> Result<SnapshotData, ReplayError> {
    if counters.is_empty() {
        counters.resize(delta.len(), WindowCounters::default());
    } else if counters.len() != delta.len() {
        return Err(ReplayError::CellCountMismatch { line });
    }
    for group in 0..counters.len() {
        counters[group] = counters[group]
            .apply(&delta[group])
            .ok_or(ReplayError::CounterUnderflow { line })?;
    }
    let recomputed = SnapshotData::from_counters(counters, di_floor);
    if let Some(recorded) = recorded {
        if normalize(recomputed.to_value()) != *recorded {
            return Err(ReplayError::SnapshotMismatch { line });
        }
    }
    Ok(recomputed)
}

/// Replay a JSONL audit trail (the full file contents) into the run that
/// wrote it. Blank lines are skipped; everything else must parse.
///
/// # Errors
/// [`ReplayError::Parse`] on a malformed line,
/// [`ReplayError::CounterUnderflow`] / [`ReplayError::SnapshotMismatch`]
/// when the trail's deltas and snapshots disagree with each other.
pub fn replay(jsonl: &str) -> Result<ReplayedRun, ReplayError> {
    let mut run = ReplayedRun::default();
    for (idx, raw) in jsonl.lines().enumerate() {
        let line = idx as u64 + 1;
        let raw = raw.trim();
        if raw.is_empty() {
            continue;
        }
        let value: Value = serde_json::from_str(raw).map_err(|e| ReplayError::Parse {
            line,
            message: e.to_string(),
        })?;
        let event = TelemetryEvent::from_value(&value).map_err(|e| ReplayError::Parse {
            line,
            message: e.to_string(),
        })?;
        run.events += 1;
        match &event {
            TelemetryEvent::IngestBatch(e) => {
                let snapshot = advance(
                    &mut run.counters,
                    &e.delta,
                    e.di_floor,
                    value.get("snapshot"),
                    line,
                )?;
                run.snapshots.push(snapshot);
            }
            TelemetryEvent::FeedbackJoin(e) => {
                let snapshot = advance(
                    &mut run.counters,
                    &e.delta,
                    e.di_floor,
                    value.get("snapshot"),
                    line,
                )?;
                run.snapshots.push(snapshot);
            }
            TelemetryEvent::DriftAlert(e) => run.alerts.push(e.alert.clone()),
            TelemetryEvent::Checkpoint(e) => {
                // A restore re-anchors the window mid-trail: subsequent
                // deltas apply to the restored counters, not whatever the
                // pre-restart engine left behind.
                if e.phase == "restored" {
                    run.counters = e.counters.clone();
                }
            }
            TelemetryEvent::Drop(e) => run.dropped_tuples = e.tuples,
            TelemetryEvent::RepairEnd(e) => run.retrains = run.retrains.max(e.retrains),
            TelemetryEvent::ModelSwap(e) => run.retrains = run.retrains.max(e.retrains),
            TelemetryEvent::MonitorRestart(e) => {
                // A restart resumes from an older coherent clone: like a
                // restored checkpoint, the event's absolute counters
                // re-anchor the window, and its gap names the tuples no
                // later event will ever account for.
                run.counters = e.counters.clone();
                run.restarts += 1;
                run.gap_tuples += e.gap_tuples;
                // The rollback covers the degraded flag too: the clone
                // predates any transition the dead incarnation logged.
                run.degraded = e.degraded;
            }
            TelemetryEvent::DegradedMode(e) => run.degraded = e.entered,
            TelemetryEvent::RepairStart(_) => {}
            // Threshold motion changes the serving boundary, not the
            // windowed counters a replay reconstructs.
            TelemetryEvent::ThresholdChange(_) => {}
        }
    }
    Ok(run)
}

/// [`replay`] over a file on disk.
///
/// # Errors
/// [`ReplayError::Io`] when the file cannot be read, plus everything
/// [`replay`] reports.
pub fn replay_file(path: impl AsRef<Path>) -> Result<ReplayedRun, ReplayError> {
    let text =
        std::fs::read_to_string(path.as_ref()).map_err(|e| ReplayError::Io(e.to_string()))?;
    replay(&text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{
        AlertExplanation, CheckpointEvent, CounterDelta, DriftAlertEvent, DropEvent,
        IngestBatchEvent,
    };
    use crate::sink::{EventSink, JsonlSink, RingSink};

    fn delta(total: i64, selected: i64) -> CounterDelta {
        CounterDelta {
            total,
            selected,
            ..CounterDelta::default()
        }
    }

    /// Build a consistent two-batch trail by running the same
    /// accumulate-and-snapshot loop a live monitor would.
    fn trail_lines() -> Vec<String> {
        let mut counters = [WindowCounters::default(); 2];
        let deltas = [[delta(10, 6), delta(10, 3)], [delta(10, 5), delta(10, 2)]];
        let mut lines = Vec::new();
        let mut seen = 0;
        for step in deltas {
            for g in 0..2 {
                counters[g] = counters[g].apply(&step[g]).unwrap();
            }
            seen += 20;
            let event = TelemetryEvent::IngestBatch(IngestBatchEvent {
                first_id: seen - 20,
                batch: 20,
                at_tuple: seen,
                di_floor: 0.8,
                delta: step.to_vec(),
                snapshot: SnapshotData::from_counters(&counters, 0.8),
            });
            lines.push(serde_json::to_string(&event).unwrap());
        }
        lines
    }

    #[test]
    fn replay_recomputes_and_verifies() {
        let lines = trail_lines();
        let run = replay(&lines.join("\n")).unwrap();
        assert_eq!(run.events, 2);
        assert_eq!(run.snapshots.len(), 2);
        assert_eq!(run.counters[0].total, 20);
        assert_eq!(run.counters[0].selected, 11);
        assert_eq!(run.snapshots[1].window_len, 40);
    }

    #[test]
    fn tampered_snapshot_is_detected() {
        let lines = trail_lines();
        // Flip a recorded selection count without touching the delta.
        let tampered = lines[1].replace("\"window_len\":40", "\"window_len\":41");
        assert_ne!(tampered, lines[1], "tamper target must exist");
        let err = replay(&format!("{}\n{}", lines[0], tampered)).unwrap_err();
        assert_eq!(err, ReplayError::SnapshotMismatch { line: 2 });
    }

    #[test]
    fn truncated_head_is_detected_as_underflow() {
        let mut counters = [WindowCounters::default(); 2];
        let fill = [delta(10, 6), delta(10, 3)];
        for g in 0..2 {
            counters[g] = counters[g].apply(&fill[g]).unwrap();
        }
        // An eviction-heavy batch: net negative without its predecessor.
        let shrink = [delta(-4, -2), delta(0, 0)];
        let mut after = counters;
        for g in 0..2 {
            after[g] = after[g].apply(&shrink[g]).unwrap();
        }
        let event = TelemetryEvent::IngestBatch(IngestBatchEvent {
            first_id: 20,
            batch: 4,
            at_tuple: 24,
            di_floor: 0.8,
            delta: shrink.to_vec(),
            snapshot: SnapshotData::from_counters(&after, 0.8),
        });
        let orphan_line = serde_json::to_string(&event).unwrap();
        let err = replay(&orphan_line).unwrap_err();
        assert_eq!(err, ReplayError::CounterUnderflow { line: 1 });
    }

    #[test]
    fn restored_checkpoint_reanchors_counters() {
        let anchor = WindowCounters {
            total: 30,
            selected: 12,
            ..WindowCounters::default()
        };
        let restore = TelemetryEvent::Checkpoint(CheckpointEvent {
            at_tuple: 30,
            phase: "restored".into(),
            version: 2,
            counters: vec![anchor, WindowCounters::default()],
            di_floor: 0.8,
        });
        let mut counters = [anchor, WindowCounters::default()];
        let step = [delta(5, 1), delta(0, 0)];
        for g in 0..2 {
            counters[g] = counters[g].apply(&step[g]).unwrap();
        }
        let batch = TelemetryEvent::IngestBatch(IngestBatchEvent {
            first_id: 30,
            batch: 5,
            at_tuple: 35,
            di_floor: 0.8,
            delta: step.to_vec(),
            snapshot: SnapshotData::from_counters(&counters, 0.8),
        });
        let text = format!(
            "{}\n{}",
            serde_json::to_string(&restore).unwrap(),
            serde_json::to_string(&batch).unwrap()
        );
        let run = replay(&text).unwrap();
        assert_eq!(run.counters[0].total, 35);
        assert_eq!(run.snapshots.len(), 1);
    }

    #[test]
    fn monitor_restart_reanchors_and_accounts_the_gap() {
        use crate::event::{DegradedModeEvent, MonitorRestartEvent};
        // Progress to 40 tuples, then a restart rewinds to a 20-tuple
        // clone with a 20-tuple gap; the next batch's delta must apply to
        // the clone's counters, not the dead incarnation's.
        let lines = trail_lines();
        let mut clone_counters = [WindowCounters::default(); 2];
        let first = [delta(10, 6), delta(10, 3)];
        for g in 0..2 {
            clone_counters[g] = clone_counters[g].apply(&first[g]).unwrap();
        }
        let restart = TelemetryEvent::MonitorRestart(MonitorRestartEvent {
            at_tuple: 20,
            restarts: 1,
            gap_tuples: 20,
            resumed_from: 20,
            counters: clone_counters.to_vec(),
            di_floor: 0.8,
            degraded: false,
        });
        let degraded = TelemetryEvent::DegradedMode(DegradedModeEvent {
            at_tuple: 20,
            entered: true,
            attempts: 3,
            error: Some("learner down".into()),
            retrains: 0,
        });
        let step = [delta(5, 2), delta(5, 1)];
        let mut after = clone_counters;
        for g in 0..2 {
            after[g] = after[g].apply(&step[g]).unwrap();
        }
        let resumed = TelemetryEvent::IngestBatch(IngestBatchEvent {
            first_id: 40,
            batch: 10,
            at_tuple: 30,
            di_floor: 0.8,
            delta: step.to_vec(),
            snapshot: SnapshotData::from_counters(&after, 0.8),
        });
        let text = format!(
            "{}\n{}\n{}\n{}\n{}",
            lines[0],
            lines[1],
            serde_json::to_string(&restart).unwrap(),
            serde_json::to_string(&degraded).unwrap(),
            serde_json::to_string(&resumed).unwrap()
        );
        let run = replay(&text).unwrap();
        assert_eq!(run.restarts, 1);
        assert_eq!(run.gap_tuples, 20);
        assert!(run.degraded);
        assert_eq!(run.counters[0].total, 15);
        assert_eq!(run.counters[0].selected, 8);
        assert_eq!(run.snapshots.len(), 3);
    }

    #[test]
    fn alerts_and_drops_are_collected() {
        let alert = TelemetryEvent::DriftAlert(DriftAlertEvent {
            at_tuple: 7,
            alert: AlertData {
                kind: "conformance_violation".into(),
                group: 1,
                at_tuple: 7,
                statistic: 13.0,
                threshold: 12.0,
            },
            explanation: AlertExplanation {
                cell: "group=1/decision".into(),
                selection_rate: vec![None, None],
                violation_rate: vec![None, None],
                summary: "moved".into(),
            },
        });
        let drop = TelemetryEvent::Drop(DropEvent {
            at_tuple: 7,
            batches: 1,
            tuples: 16,
        });
        let text = format!(
            "{}\n\n{}",
            serde_json::to_string(&alert).unwrap(),
            serde_json::to_string(&drop).unwrap()
        );
        let run = replay(&text).unwrap();
        assert_eq!(run.alerts.len(), 1);
        assert_eq!(run.alerts[0].group, 1);
        assert_eq!(run.dropped_tuples, 16);
        assert_eq!(run.events, 2);
    }

    #[test]
    fn jsonl_sink_trail_replays_through_replay_file() {
        let path =
            std::env::temp_dir().join(format!("cf-telemetry-replay-{}.jsonl", std::process::id()));
        {
            let mut sink = JsonlSink::create(&path).unwrap();
            let mut ring = RingSink::new(16);
            for line in trail_lines() {
                let event: TelemetryEvent = serde_json::from_str(&line).unwrap();
                sink.emit(&event);
                ring.emit(&event);
            }
            sink.flush();
        }
        let run = replay_file(&path).unwrap();
        assert_eq!(run.snapshots.len(), 2);
        std::fs::remove_file(&path).ok();
    }
}
