//! Raw scoring-kernel microbenchmarks, outside the stream engine.
//!
//! Two head-to-head pairs, each pinning a kernel against its scalar
//! reference on the same fitted model and the same scoring block:
//!
//! * `kernels/gbt`: the flattened one-tree-over-all-rows batch traversal
//!   (`predict_margin_rows`) vs the recursive per-row walker
//!   (`predict_margin_rows_recursive`). Same forest, bit-identical
//!   margins — the gap is pure memory layout and branch predictability.
//! * `kernels/logistic`: the 4-wide register-tiled affine kernel
//!   (`Matrix::affine_margins`) vs a per-row `dot + intercept` loop.
//!
//! The sustained tuples/sec numbers for the same pairs land in
//! `BENCH_stream.json` under `kernels/` via `run_stream_bench`; this
//! harness is for interactive comparison while editing the kernels.

use cf_bench::stream_load::kernel_problem;
use cf_learners::{Gbt, GbtConfig, Learner, LogisticRegression};
use cf_linalg::vector;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

const BLOCK_ROWS: usize = 8_192;

fn bench_gbt_margins(c: &mut Criterion) {
    let (x_train, y_train, block) = kernel_problem(16, 4_096, BLOCK_ROWS, 11);
    let mut gbt = Gbt::new(GbtConfig::default());
    gbt.fit(&x_train, &y_train, None).unwrap();

    let mut group = c.benchmark_group("kernels/gbt");
    group.sample_size(10);
    group.bench_function("recursive", |b| {
        b.iter(|| {
            gbt.predict_margin_rows_recursive(black_box(&block))
                .unwrap()
        });
    });
    group.bench_function("flat", |b| {
        b.iter(|| gbt.predict_margin_rows(black_box(&block)).unwrap());
    });
    group.finish();
}

fn bench_logistic_margins(c: &mut Criterion) {
    let (x_train, y_train, block) = kernel_problem(32, 4_096, BLOCK_ROWS, 13);
    let mut lr = LogisticRegression::default();
    lr.fit(&x_train, &y_train, None).unwrap();
    let coef = lr.coefficients().to_vec();
    let bias = lr.intercept();

    let mut group = c.benchmark_group("kernels/logistic");
    group.sample_size(10);
    group.bench_function("scalar", |b| {
        b.iter(|| {
            let margins: Vec<f64> = black_box(&block)
                .iter_rows()
                .map(|row| vector::dot(&coef, row) + bias)
                .collect();
            margins
        });
    });
    group.bench_function("tiles", |b| {
        b.iter(|| black_box(&block).affine_margins(&coef, bias).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_gbt_margins, bench_logistic_margins);
criterion_main!(benches);
