//! Microbenchmark: conformance-constraint discovery cost.
//!
//! The paper quotes `O(n·m²)` for constraint production plus `O(q³)` for the
//! projections (§III-A/B); this bench sweeps both axes to verify the shape.

use cf_conformance::{learn_constraints, LearnOptions};
use cf_linalg::Matrix;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::hint::black_box;

fn random_matrix(n: usize, m: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let data: Vec<f64> = (0..n * m).map(|_| rng.gen_range(-1.0..1.0)).collect();
    Matrix::from_vec(n, m, data)
}

fn bench_by_rows(c: &mut Criterion) {
    let mut group = c.benchmark_group("cc_derivation/rows");
    for &n in &[500usize, 2_000, 8_000] {
        let x = random_matrix(n, 6, 1);
        group.bench_with_input(BenchmarkId::from_parameter(n), &x, |b, x| {
            b.iter(|| learn_constraints(black_box(x), &LearnOptions::paper_default()));
        });
    }
    group.finish();
}

fn bench_by_attrs(c: &mut Criterion) {
    let mut group = c.benchmark_group("cc_derivation/attrs");
    for &m in &[4usize, 8, 16, 32] {
        let x = random_matrix(2_000, m, 2);
        group.bench_with_input(BenchmarkId::from_parameter(m), &x, |b, x| {
            b.iter(|| learn_constraints(black_box(x), &LearnOptions::paper_default()));
        });
    }
    group.finish();
}

fn bench_violation(c: &mut Criterion) {
    let x = random_matrix(2_000, 8, 3);
    let cs = learn_constraints(&x, &LearnOptions::paper_default());
    let probe: Vec<f64> = (0..8).map(|i| i as f64 * 0.1).collect();
    c.bench_function("cc_derivation/violation_single_tuple", |b| {
        b.iter(|| cs.violation(black_box(&probe)));
    });
}

criterion_group!(benches, bench_by_rows, bench_by_attrs, bench_violation);
criterion_main!(benches);
