//! Microbenchmark: learner training cost (the Fig. 14 denominator).

use cf_learners::{Gbt, GbtConfig, Learner, LogisticRegression};
use cf_linalg::Matrix;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::hint::black_box;

fn classification_data(n: usize, d: usize, seed: u64) -> (Matrix, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    for i in 0..n {
        let label = (i % 2) as f64;
        let shift = if label > 0.5 { 0.4 } else { -0.4 };
        rows.push(
            (0..d)
                .map(|_| shift + rng.gen_range(-1.0..1.0))
                .collect::<Vec<f64>>(),
        );
        y.push(label);
    }
    (Matrix::from_rows(&rows), y)
}

fn bench_logistic(c: &mut Criterion) {
    let mut group = c.benchmark_group("learner_fit/logistic");
    group.sample_size(10);
    for &n in &[1_000usize, 5_000, 20_000] {
        let (x, y) = classification_data(n, 12, 1);
        group.bench_with_input(BenchmarkId::from_parameter(n), &(x, y), |b, (x, y)| {
            b.iter(|| {
                let mut m = LogisticRegression::default();
                m.fit(black_box(x), black_box(y), None).unwrap();
                m
            });
        });
    }
    group.finish();
}

fn bench_gbt(c: &mut Criterion) {
    let mut group = c.benchmark_group("learner_fit/gbt");
    group.sample_size(10);
    for &n in &[1_000usize, 5_000] {
        let (x, y) = classification_data(n, 12, 2);
        group.bench_with_input(BenchmarkId::from_parameter(n), &(x, y), |b, (x, y)| {
            b.iter(|| {
                let mut m = Gbt::new(GbtConfig {
                    n_rounds: 30,
                    ..GbtConfig::default()
                });
                m.fit(black_box(x), black_box(y), None).unwrap();
                m
            });
        });
    }
    group.finish();
}

fn bench_weighted_vs_unweighted(c: &mut Criterion) {
    let (x, y) = classification_data(5_000, 12, 3);
    let w: Vec<f64> = (0..x.rows()).map(|i| 1.0 + (i % 7) as f64).collect();
    c.bench_function("learner_fit/logistic_weighted_5k", |b| {
        b.iter(|| {
            let mut m = LogisticRegression::default();
            m.fit(black_box(&x), black_box(&y), Some(black_box(&w)))
                .unwrap();
            m
        });
    });
}

criterion_group!(
    benches,
    bench_logistic,
    bench_gbt,
    bench_weighted_vs_unweighted
);
criterion_main!(benches);
