//! Microbenchmark: the interventions themselves — weight derivation and
//! model routing, isolated from learner training (the Fig. 14 numerators).

use cf_baselines::{Capuchin, KamiranCalders, OmniFair};
use cf_data::split::{split3, SplitRatios};
use cf_datasets::realsim::RealWorldSpec;
use cf_learners::LearnerKind;
use confair_core::{
    confair::{build_profile, FairnessTarget},
    ConFair, DiffFair, Intervention, NoIntervention,
};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_weight_derivation(c: &mut Criterion) {
    let data = RealWorldSpec::by_name("MEPS")
        .unwrap()
        .generate_scaled(0.2, 1);
    let split = split3(&data, SplitRatios::paper_default(), 1);
    let mut group = c.benchmark_group("interventions/weights");
    group.sample_size(10);
    group.bench_function("kam_closed_form", |b| {
        b.iter(|| KamiranCalders::weights(black_box(&split.train)).unwrap());
    });
    group.bench_function("omn_cell_weights", |b| {
        b.iter(|| {
            OmniFair::weights(
                black_box(&split.train),
                FairnessTarget::DisparateImpact,
                1.5,
            )
            .unwrap()
        });
    });
    group.bench_function("confair_profile_algorithm2", |b| {
        b.iter(|| {
            build_profile(
                black_box(&split.train),
                FairnessTarget::DisparateImpact,
                Some(cf_density::FilterConfig::paper_default()),
                &cf_conformance::LearnOptions::paper_default(),
            )
            .unwrap()
        });
    });
    group.bench_function("cap_repair", |b| {
        b.iter(|| {
            Capuchin::paper_default()
                .repair_multiset(black_box(&split.train))
                .unwrap()
        });
    });
    group.finish();
}

fn bench_difffair_predict(c: &mut Criterion) {
    let data = RealWorldSpec::by_name("MEPS")
        .unwrap()
        .generate_scaled(0.2, 2);
    let split = split3(&data, SplitRatios::paper_default(), 2);
    let predictor = DiffFair::paper_default()
        .train(&split.train, &split.validation, LearnerKind::Logistic)
        .unwrap();
    let baseline = NoIntervention
        .train(&split.train, &split.validation, LearnerKind::Logistic)
        .unwrap();
    let mut group = c.benchmark_group("interventions/predict");
    group.bench_function("difffair_cc_routing", |b| {
        b.iter(|| predictor.predict(black_box(&split.test)).unwrap());
    });
    group.bench_function("single_model", |b| {
        b.iter(|| baseline.predict(black_box(&split.test)).unwrap());
    });
    group.finish();
}

fn bench_end_to_end_train(c: &mut Criterion) {
    let data = RealWorldSpec::by_name("MEPS")
        .unwrap()
        .generate_scaled(0.1, 3);
    let split = split3(&data, SplitRatios::paper_default(), 3);
    let mut group = c.benchmark_group("interventions/train_lr");
    group.sample_size(10);
    let confair = ConFair::paper_default();
    group.bench_function("confair_auto_tuned", |b| {
        b.iter(|| {
            confair
                .train(
                    black_box(&split.train),
                    &split.validation,
                    LearnerKind::Logistic,
                )
                .unwrap()
        });
    });
    let kam = KamiranCalders;
    group.bench_function("kam", |b| {
        b.iter(|| {
            kam.train(
                black_box(&split.train),
                &split.validation,
                LearnerKind::Logistic,
            )
            .unwrap()
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_weight_derivation,
    bench_difffair_predict,
    bench_end_to_end_train
);
criterion_main!(benches);
