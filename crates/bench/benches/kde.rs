//! Microbenchmark: KDE self-density (the Algorithm-3 cost driver),
//! exact vs k-d-tree accelerated — the `O(mn²)` → `O(m log n)` claim of
//! §III-C.

use cf_density::{Kde, TreeKde};
use cf_linalg::Matrix;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::hint::black_box;

fn clustered_points(n: usize, d: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            let c = if i % 2 == 0 { 1.5 } else { -1.5 };
            (0..d).map(|_| c + rng.gen_range(-0.5..0.5)).collect()
        })
        .collect();
    Matrix::from_rows(&rows)
}

fn bench_exact_vs_tree(c: &mut Criterion) {
    let mut group = c.benchmark_group("kde/self_densities");
    group.sample_size(10);
    for &n in &[500usize, 2_000, 6_000] {
        let x = clustered_points(n, 4, 7);
        group.bench_with_input(BenchmarkId::new("exact", n), &x, |b, x| {
            b.iter(|| Kde::fit(black_box(x)).self_densities());
        });
        group.bench_with_input(BenchmarkId::new("kdtree", n), &x, |b, x| {
            b.iter(|| TreeKde::fit(black_box(x)).self_densities());
        });
    }
    group.finish();
}

fn bench_filter(c: &mut Criterion) {
    use cf_data::{Column, Dataset};
    let x = clustered_points(4_000, 4, 9);
    let n = x.rows();
    let columns: Vec<Column> = (0..4).map(|j| Column::Numeric(x.col(j))).collect();
    let ds = Dataset::new(
        "bench",
        (0..4).map(|j| format!("x{j}")).collect(),
        columns,
        (0..n).map(|i| (i % 2) as u8).collect(),
        (0..n).map(|i| u8::from(i % 5 == 0)).collect(),
    )
    .unwrap();
    c.bench_function("kde/density_filter_algorithm3", |b| {
        b.iter(|| {
            cf_density::density_filter(black_box(&ds), cf_density::FilterConfig::paper_default())
        });
    });
}

criterion_group!(benches, bench_exact_vs_tree, bench_filter);
criterion_main!(benches);
