//! Throughput of the online scoring + monitoring path.
//!
//! The acceptance bar for the streaming subsystem: ≥ 100k tuples/sec
//! single-threaded through the full `ingest` path (model forward pass,
//! conformance check, O(1) windowed counters, Page–Hinkley step). The
//! monitors read counters — never the window — so per-tuple cost is flat
//! in the window size, which the window-size sweep makes visible. All
//! workloads come from `cf_bench::stream_load`, shared with the
//! `run_stream_bench` trajectory binary.

use cf_bench::stream_load::{
    fresh_async_engine, fresh_engine, fresh_retraining_engine, fresh_sharded_engine, pregenerate,
    pregenerate_sharded,
};
use cf_stream::AsyncConfig;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Instant;

fn bench_ingest_batches(c: &mut Criterion) {
    let mut group = c.benchmark_group("stream_ingest/batch");
    group.sample_size(20);
    for &batch in &[64usize, 512, 4_096] {
        let batches = pregenerate(32, batch);
        let mut engine = fresh_engine(4_096);
        let mut next = 0usize;
        group.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |b, _| {
            b.iter(|| {
                let outcome = engine.ingest(black_box(&batches[next])).unwrap();
                next = (next + 1) % batches.len();
                outcome.decisions.len()
            });
        });
    }
    group.finish();
}

fn bench_window_size_independence(c: &mut Criterion) {
    // Per-tuple cost must not grow with the window: counters, not scans —
    // and with the ring arena, steady-state pushes must not allocate no
    // matter how large the retained window is.
    let mut group = c.benchmark_group("stream_ingest/window");
    group.sample_size(20);
    for &window in &[256usize, 4_096, 65_536, 262_144] {
        let batches = pregenerate(32, 512);
        let mut engine = fresh_engine(window);
        let mut next = 0usize;
        group.bench_with_input(BenchmarkId::from_parameter(window), &window, |b, _| {
            b.iter(|| {
                let outcome = engine.ingest(black_box(&batches[next])).unwrap();
                next = (next + 1) % batches.len();
                outcome.decisions.len()
            });
        });
    }
    group.finish();
}

fn bench_sharded_ingest(c: &mut Criterion) {
    // Aggregate ingest across shard counts: each ingest call routes a
    // mixed batch and runs the per-shard engines on scoped threads. On a
    // multi-core host the per-batch wall time should stay ~flat as shards
    // (and tuples per call) grow together — near-linear scaling.
    let mut group = c.benchmark_group("stream_ingest/sharded");
    group.sample_size(10);
    for &shards in &[1usize, 2, 4] {
        let batches = pregenerate_sharded(shards, 16, 2_048);
        let mut engine = fresh_sharded_engine(4_096, shards);
        let mut next = 0usize;
        group.bench_with_input(BenchmarkId::from_parameter(shards), &shards, |b, _| {
            b.iter(|| {
                let outcome = engine.ingest(black_box(&batches[next])).unwrap();
                next = (next + 1) % batches.len();
                outcome.decisions.len()
            });
        });
    }
    group.finish();
}

/// The acceptance check, reported in tuples/sec: one sustained run over a
/// million pregenerated tuples.
fn report_sustained_throughput(_c: &mut Criterion) {
    let batch = 1_024usize;
    let batches = pregenerate(64, batch);
    let mut engine = fresh_engine(4_096);
    // Warm-up: fill the window and fault in the caches.
    for b in &batches {
        engine.ingest(b).unwrap();
    }
    let total: usize = 1_000_000;
    let mut ingested = 0usize;
    let mut next = 0usize;
    let started = Instant::now();
    while ingested < total {
        let outcome = engine.ingest(black_box(&batches[next])).unwrap();
        ingested += outcome.decisions.len();
        next = (next + 1) % batches.len();
    }
    let secs = started.elapsed().as_secs_f64();
    let rate = ingested as f64 / secs;
    println!(
        "stream_ingest/sustained: {ingested} tuples in {secs:.2}s = {rate:.0} tuples/sec \
         (target: >= 100000)"
    );
}

fn bench_sync_vs_async_ingest(c: &mut Criterion) {
    // What one ingest call costs the *caller*: the sync engine pays for
    // scoring plus all monitoring inline; the async engine returns after
    // the forward pass and a queue hand-off. (Criterion's steady drumbeat
    // keeps the async queue drained between iterations, so this measures
    // the uncontended score path; the drifting/retraining tail is covered
    // by `run_stream_bench`'s latency section.)
    let mut group = c.benchmark_group("stream_ingest/sync_vs_async");
    group.sample_size(20);
    let batch = 512usize;
    let batches = pregenerate(32, batch);

    let mut sync_engine = fresh_retraining_engine(4_096);
    let mut next = 0usize;
    group.bench_function("sync", |b| {
        b.iter(|| {
            let outcome = sync_engine.ingest(black_box(&batches[next])).unwrap();
            next = (next + 1) % batches.len();
            outcome.decisions.len()
        });
    });

    let mut async_engine = fresh_async_engine(4_096, AsyncConfig::default());
    let mut next = 0usize;
    group.bench_function("async", |b| {
        b.iter(|| {
            let decisions = async_engine.ingest(black_box(&batches[next])).unwrap();
            next = (next + 1) % batches.len();
            decisions.len()
        });
    });
    async_engine.flush().unwrap();
    group.finish();
}

criterion_group!(
    benches,
    bench_ingest_batches,
    bench_window_size_independence,
    bench_sharded_ingest,
    bench_sync_vs_async_ingest,
    report_sustained_throughput
);
criterion_main!(benches);
