//! Throughput of the online scoring + monitoring path.
//!
//! The acceptance bar for the streaming subsystem: ≥ 100k tuples/sec
//! single-threaded through the full `ingest` path (model forward pass,
//! conformance check, O(1) windowed counters, Page–Hinkley step). The
//! monitors read counters — never the window — so per-tuple cost is flat
//! in the window size, which the window-size sweep makes visible.

use cf_datasets::stream::{DriftStream, DriftStreamSpec};
use cf_learners::LearnerKind;
use cf_stream::{RetrainPolicy, StreamConfig, StreamEngine, StreamTuple};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Instant;

fn stationary_spec() -> DriftStreamSpec {
    DriftStreamSpec {
        drift_onset: u64::MAX,
        ..DriftStreamSpec::default()
    }
}

fn fresh_engine(window: usize) -> StreamEngine {
    let reference = stationary_spec().reference(4_000, 21);
    let config = StreamConfig {
        window,
        retrain: RetrainPolicy::Never,
        ..StreamConfig::default()
    };
    StreamEngine::from_reference(&reference, LearnerKind::Logistic, 21, config).expect("bootstrap")
}

fn pregenerate(n_batches: usize, batch: usize) -> Vec<Vec<StreamTuple>> {
    let mut stream = DriftStream::new(stationary_spec(), 3);
    (0..n_batches)
        .map(|_| StreamTuple::rows_from_dataset(&stream.next_batch(batch)).expect("numeric"))
        .collect()
}

fn bench_ingest_batches(c: &mut Criterion) {
    let mut group = c.benchmark_group("stream_ingest/batch");
    group.sample_size(20);
    for &batch in &[64usize, 512, 4_096] {
        let batches = pregenerate(32, batch);
        let mut engine = fresh_engine(4_096);
        let mut next = 0usize;
        group.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |b, _| {
            b.iter(|| {
                let outcome = engine.ingest(black_box(&batches[next])).unwrap();
                next = (next + 1) % batches.len();
                outcome.decisions.len()
            });
        });
    }
    group.finish();
}

fn bench_window_size_independence(c: &mut Criterion) {
    // Per-tuple cost must not grow with the window: counters, not scans.
    let mut group = c.benchmark_group("stream_ingest/window");
    group.sample_size(20);
    for &window in &[256usize, 4_096, 65_536] {
        let batches = pregenerate(32, 512);
        let mut engine = fresh_engine(window);
        let mut next = 0usize;
        group.bench_with_input(BenchmarkId::from_parameter(window), &window, |b, _| {
            b.iter(|| {
                let outcome = engine.ingest(black_box(&batches[next])).unwrap();
                next = (next + 1) % batches.len();
                outcome.decisions.len()
            });
        });
    }
    group.finish();
}

/// The acceptance check, reported in tuples/sec: one sustained run over a
/// million pregenerated tuples.
fn report_sustained_throughput(_c: &mut Criterion) {
    let batch = 1_024usize;
    let batches = pregenerate(64, batch);
    let mut engine = fresh_engine(4_096);
    // Warm-up: fill the window and fault in the caches.
    for b in &batches {
        engine.ingest(b).unwrap();
    }
    let total: usize = 1_000_000;
    let mut ingested = 0usize;
    let mut next = 0usize;
    let started = Instant::now();
    while ingested < total {
        let outcome = engine.ingest(black_box(&batches[next])).unwrap();
        ingested += outcome.decisions.len();
        next = (next + 1) % batches.len();
    }
    let secs = started.elapsed().as_secs_f64();
    let rate = ingested as f64 / secs;
    println!(
        "stream_ingest/sustained: {ingested} tuples in {secs:.2}s = {rate:.0} tuples/sec \
         (target: >= 100000)"
    );
}

criterion_group!(
    benches,
    bench_ingest_batches,
    bench_window_size_independence,
    report_sustained_throughput
);
criterion_main!(benches);
