//! Smoke tests: every figure module runs end-to-end at a tiny scale.
//!
//! These don't validate numbers (the dedicated experiment runs do) — they
//! pin down that each experiment builds its datasets, trains its methods,
//! and emits its artifact without panicking.

use cf_bench::{figures, ExpConfig};

fn tiny() -> ExpConfig {
    ExpConfig {
        scale: 0.01,
        reps: 1,
        seed: 7,
        out_dir: std::env::temp_dir().join("cf_bench_smoke"),
    }
}

#[test]
fn fig02_prints() {
    figures::fig02::run(&tiny());
}

#[test]
fn fig04_generates_all_simulators() {
    figures::fig04::run(&tiny());
    let json = std::fs::read_to_string(tiny().out_dir.join("fig04_datasets.json")).unwrap();
    let rows: serde_json::Value = serde_json::from_str(&json).unwrap();
    assert_eq!(rows.as_array().unwrap().len(), 7);
}

#[test]
fn fig10_emits_csv() {
    figures::fig10::run(&tiny());
    assert!(tiny().out_dir.join("fig10_syn1.csv").exists());
}

#[test]
fn fig11_synthetic_grid_runs() {
    figures::fig11::run(&tiny());
    let json =
        std::fs::read_to_string(tiny().out_dir.join("fig11_synthetic_difffair.json")).unwrap();
    let rows: serde_json::Value = serde_json::from_str(&json).unwrap();
    // 5 synthetic datasets × 4 methods × 1 learner (cells that failed are
    // omitted, so ≤ 20 but at least the no-intervention cells must exist).
    assert!(rows.as_array().unwrap().len() >= 5);
}

#[test]
fn sweep_runs_on_meps() {
    figures::sweep::run_for("MEPS", "smoke_fig08", &tiny());
    assert!(tiny().out_dir.join("smoke_fig08_meps.json").exists());
}
