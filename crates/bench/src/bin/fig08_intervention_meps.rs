//! Regenerates the paper's Fig. 08 (see cf_bench::figures::fig08).
fn main() {
    let cfg = cf_bench::ExpConfig::from_args();
    cf_bench::figures::fig08::run(&cfg);
}
