//! Regenerates the paper's Fig. 05 (see cf_bench::figures::fig05).
fn main() {
    let cfg = cf_bench::ExpConfig::from_args();
    cf_bench::figures::fig05::run(&cfg);
}
