//! Regenerates the paper's Fig. 11 (see cf_bench::figures::fig11).
fn main() {
    let cfg = cf_bench::ExpConfig::from_args();
    cf_bench::figures::fig11::run(&cfg);
}
