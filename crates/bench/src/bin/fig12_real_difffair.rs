//! Regenerates the paper's Fig. 12 (see cf_bench::figures::fig12).
fn main() {
    let cfg = cf_bench::ExpConfig::from_args();
    cf_bench::figures::fig12::run(&cfg);
}
