//! Regenerates the paper's Fig. 02 (see cf_bench::figures::fig02).
fn main() {
    let cfg = cf_bench::ExpConfig::from_args();
    cf_bench::figures::fig02::run(&cfg);
}
