//! Regenerates the paper's Fig. 09 (see cf_bench::figures::fig09).
fn main() {
    let cfg = cf_bench::ExpConfig::from_args();
    cf_bench::figures::fig09::run(&cfg);
}
