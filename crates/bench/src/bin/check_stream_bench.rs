//! Soft throughput-regression guard over `BENCH_stream.json` artifacts.
//!
//! Compares the committed baseline against a freshly generated artifact
//! (typically a `--quick` run in CI), prints a delta table for every row
//! present in both, and fails when a `single_shard/` row has lost more
//! than the threshold (20% by default) of its baseline throughput, or
//! when the `repair/nudge` row's `recovery_us` has grown by more than
//! the same threshold — the µs-scale nudge is the ladder's reason to
//! exist, so its recovery cost gates alongside the serving hot path.
//! Everything else (sharded/async/latency, the other repair rows) is
//! printed for the reviewer but never fails the build: quick runs on
//! shared CI hosts are too noisy to hard-gate.
//!
//! ```text
//! check_stream_bench --baseline=BENCH_stream.json \
//!     --current=target/BENCH_stream_quick.json [--threshold=0.2]
//! ```

use serde_json::Value;
use std::process::ExitCode;

struct Row {
    name: String,
    /// Throughput rows carry `tuples_per_sec` (higher is better);
    /// repair rows carry `recovery_us` (lower is better). Exactly one
    /// is set per row.
    tuples_per_sec: Option<f64>,
    recovery_us: Option<f64>,
}

fn load_rows(path: &str) -> Result<Vec<Row>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let doc: Value =
        serde_json::from_str(&text).map_err(|e| format!("cannot parse {path}: {e:?}"))?;
    let configs = doc
        .get("configs")
        .and_then(Value::as_array)
        .ok_or_else(|| format!("{path}: no `configs` array"))?;
    let mut rows = Vec::with_capacity(configs.len());
    for entry in configs {
        let name = entry
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("{path}: config row without a `name`"))?;
        let tps = entry.get("tuples_per_sec").and_then(Value::as_f64);
        let recovery = entry.get("recovery_us").and_then(Value::as_f64);
        // Latency rows (latency/*) report percentiles, not throughput or
        // recovery cost; they carry neither metric and are skipped here.
        if tps.is_none() && recovery.is_none() {
            continue;
        }
        rows.push(Row {
            name: name.to_string(),
            tuples_per_sec: tps,
            recovery_us: recovery,
        });
    }
    Ok(rows)
}

fn parse_args() -> Result<(String, String, f64), String> {
    let mut baseline = None;
    let mut current = None;
    let mut threshold = 0.2f64;
    for arg in std::env::args().skip(1) {
        if let Some(v) = arg.strip_prefix("--baseline=") {
            baseline = Some(v.to_string());
        } else if let Some(v) = arg.strip_prefix("--current=") {
            current = Some(v.to_string());
        } else if let Some(v) = arg.strip_prefix("--threshold=") {
            threshold = v
                .parse::<f64>()
                .map_err(|e| format!("bad --threshold {v}: {e}"))?;
        } else {
            return Err(format!("unknown argument: {arg}"));
        }
    }
    match (baseline, current) {
        (Some(b), Some(c)) => Ok((b, c, threshold)),
        _ => Err(
            "usage: check_stream_bench --baseline=<json> --current=<json> \
                  [--threshold=0.2]"
                .to_string(),
        ),
    }
}

fn main() -> ExitCode {
    let (baseline_path, current_path, threshold) = match parse_args() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let (baseline, current) = match (load_rows(&baseline_path), load_rows(&current_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "{:<34} {:>14} {:>14} {:>8}",
        "row", "baseline", "current", "delta"
    );
    let mut failures = Vec::new();
    for base in &baseline {
        let Some(cur) = current.iter().find(|r| r.name == base.name) else {
            // Quick runs emit a subset of the full artifact's rows.
            continue;
        };
        // Pick the metric the row carries; a regression is lost
        // throughput, or gained recovery cost.
        let (b, c, regressed) = match (base.tuples_per_sec, cur.tuples_per_sec) {
            (Some(b), Some(c)) => (b, c, (c - b) / b < -threshold),
            _ => match (base.recovery_us, cur.recovery_us) {
                (Some(b), Some(c)) => (b, c, (c - b) / b > threshold),
                _ => continue, // metric changed shape between artifacts
            },
        };
        let delta = (c - b) / b;
        let gated = base.name.starts_with("single_shard/") || base.name == "repair/nudge";
        let marker = if gated && regressed {
            failures.push(base.name.clone());
            "  << REGRESSION"
        } else if gated {
            "  (gated)"
        } else {
            ""
        };
        println!(
            "{:<34} {:>14.0} {:>14.0} {:>+7.1}%{marker}",
            base.name,
            b,
            c,
            delta * 100.0
        );
    }
    for cur in &current {
        if !baseline.iter().any(|r| r.name == cur.name) {
            println!(
                "{:<34} {:>14} {:>14.0}   (new row)",
                cur.name,
                "-",
                cur.tuples_per_sec.or(cur.recovery_us).unwrap_or(0.0)
            );
        }
    }

    if failures.is_empty() {
        println!(
            "\nok: no single_shard/ throughput row or repair/nudge recovery \
             regressed more than {:.0}% vs {baseline_path}",
            threshold * 100.0
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "\nFAIL: {} gated row(s) regressed more than {:.0}%: {}",
            failures.len(),
            threshold * 100.0,
            failures.join(", ")
        );
        ExitCode::FAILURE
    }
}
