//! Soft throughput-regression guard over `BENCH_stream.json` artifacts.
//!
//! Compares the committed baseline against a freshly generated artifact
//! (typically a `--quick` run in CI), prints a delta table for every row
//! present in both, and fails only when a `single_shard/` row has lost
//! more than the threshold (20% by default) of its baseline throughput.
//! Only the single-shard hot path gates: quick runs on shared CI hosts
//! are too noisy to hard-gate the sharded/async/latency rows, so those
//! deltas are printed for the reviewer but never fail the build.
//!
//! ```text
//! check_stream_bench --baseline=BENCH_stream.json \
//!     --current=target/BENCH_stream_quick.json [--threshold=0.2]
//! ```

use serde_json::Value;
use std::process::ExitCode;

struct Row {
    name: String,
    tuples_per_sec: f64,
}

fn load_rows(path: &str) -> Result<Vec<Row>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let doc: Value =
        serde_json::from_str(&text).map_err(|e| format!("cannot parse {path}: {e:?}"))?;
    let configs = doc
        .get("configs")
        .and_then(Value::as_array)
        .ok_or_else(|| format!("{path}: no `configs` array"))?;
    let mut rows = Vec::with_capacity(configs.len());
    for entry in configs {
        let name = entry
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("{path}: config row without a `name`"))?;
        // Latency rows (latency/*) report percentiles, not throughput;
        // they carry no `tuples_per_sec` and are skipped here.
        let Some(tps) = entry.get("tuples_per_sec").and_then(Value::as_f64) else {
            continue;
        };
        rows.push(Row {
            name: name.to_string(),
            tuples_per_sec: tps,
        });
    }
    Ok(rows)
}

fn parse_args() -> Result<(String, String, f64), String> {
    let mut baseline = None;
    let mut current = None;
    let mut threshold = 0.2f64;
    for arg in std::env::args().skip(1) {
        if let Some(v) = arg.strip_prefix("--baseline=") {
            baseline = Some(v.to_string());
        } else if let Some(v) = arg.strip_prefix("--current=") {
            current = Some(v.to_string());
        } else if let Some(v) = arg.strip_prefix("--threshold=") {
            threshold = v
                .parse::<f64>()
                .map_err(|e| format!("bad --threshold {v}: {e}"))?;
        } else {
            return Err(format!("unknown argument: {arg}"));
        }
    }
    match (baseline, current) {
        (Some(b), Some(c)) => Ok((b, c, threshold)),
        _ => Err(
            "usage: check_stream_bench --baseline=<json> --current=<json> \
                  [--threshold=0.2]"
                .to_string(),
        ),
    }
}

fn main() -> ExitCode {
    let (baseline_path, current_path, threshold) = match parse_args() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let (baseline, current) = match (load_rows(&baseline_path), load_rows(&current_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "{:<34} {:>14} {:>14} {:>8}",
        "row", "baseline t/s", "current t/s", "delta"
    );
    let mut failures = Vec::new();
    for base in &baseline {
        let Some(cur) = current.iter().find(|r| r.name == base.name) else {
            // Quick runs emit a subset of the full artifact's rows.
            continue;
        };
        let delta = (cur.tuples_per_sec - base.tuples_per_sec) / base.tuples_per_sec;
        let gated = base.name.starts_with("single_shard/");
        let marker = if gated && delta < -threshold {
            failures.push(base.name.clone());
            "  << REGRESSION"
        } else if gated {
            "  (gated)"
        } else {
            ""
        };
        println!(
            "{:<34} {:>14.0} {:>14.0} {:>+7.1}%{marker}",
            base.name,
            base.tuples_per_sec,
            cur.tuples_per_sec,
            delta * 100.0
        );
    }
    for cur in &current {
        if !baseline.iter().any(|r| r.name == cur.name) {
            println!(
                "{:<34} {:>14} {:>14.0}   (new row)",
                cur.name, "-", cur.tuples_per_sec
            );
        }
    }

    if failures.is_empty() {
        println!(
            "\nok: no single_shard/ row regressed more than {:.0}% vs {baseline_path}",
            threshold * 100.0
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "\nFAIL: {} single_shard row(s) regressed more than {:.0}%: {}",
            failures.len(),
            threshold * 100.0,
            failures.join(", ")
        );
        ExitCode::FAILURE
    }
}
