//! Regenerates the paper's Fig. 06 (see cf_bench::figures::fig06).
fn main() {
    let cfg = cf_bench::ExpConfig::from_args();
    cf_bench::figures::fig06::run(&cfg);
}
