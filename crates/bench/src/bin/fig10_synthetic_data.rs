//! Regenerates the paper's Fig. 10 (see cf_bench::figures::fig10).
fn main() {
    let cfg = cf_bench::ExpConfig::from_args();
    cf_bench::figures::fig10::run(&cfg);
}
