//! Regenerates the paper's Fig. 04 (see cf_bench::figures::fig04).
fn main() {
    let cfg = cf_bench::ExpConfig::from_args();
    cf_bench::figures::fig04::run(&cfg);
}
