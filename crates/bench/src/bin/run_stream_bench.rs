//! The stream-engine throughput trajectory: sustained tuples/sec through
//! the full `ingest` path (forward pass, conformance check, O(1) counters,
//! Page–Hinkley step) for the single-shard and sharded configurations, plus
//! the window-size flatness check — written to `BENCH_stream.json` so
//! successive PRs can track the numbers.
//!
//! Arguments: `--quick` shrinks every workload for CI smoke runs;
//! `--out=<path>` overrides the artifact path (default:
//! `BENCH_stream.json` in the working directory). Workloads come from
//! `cf_bench::stream_load`, shared with the criterion bench.

use cf_bench::stream_load::{fresh_engine, fresh_sharded_engine, pregenerate, pregenerate_sharded};
use cf_stream::{ShardedEngine, ShardedTuple, StreamEngine, StreamTuple};
use std::hint::black_box;
use std::time::Instant;

/// Drive `engine.ingest` over pregenerated batches until at least
/// `total_tuples` have flowed through; returns (tuples, seconds).
fn drive_single(
    engine: &mut StreamEngine,
    batches: &[Vec<StreamTuple>],
    total_tuples: usize,
) -> (usize, f64) {
    // Warm-up: ingest until the window is full, so the timed region is
    // the steady state (arena wrapped, no fill-phase allocations) for
    // every window size alike.
    let capacity = engine.config().window;
    let mut next = 0usize;
    while engine.window_len() < capacity {
        engine.ingest(&batches[next]).expect("warm-up ingest");
        next = (next + 1) % batches.len();
    }
    let mut ingested = 0usize;
    let started = Instant::now();
    while ingested < total_tuples {
        let outcome = engine.ingest(black_box(&batches[next])).expect("ingest");
        ingested += outcome.decisions.len();
        next = (next + 1) % batches.len();
    }
    (ingested, started.elapsed().as_secs_f64())
}

fn drive_sharded(
    engine: &mut ShardedEngine,
    batches: &[Vec<ShardedTuple>],
    total_tuples: usize,
) -> (usize, f64) {
    // Warm-up: every shard's window must be full before timing starts.
    let capacity = engine.shard(0).expect("shard 0").config().window;
    let shards = engine.shard_count();
    let mut next = 0usize;
    while (0..shards).any(|s| engine.shard(s as u32).expect("shard").window_len() < capacity) {
        engine.ingest(&batches[next]).expect("warm-up ingest");
        next = (next + 1) % batches.len();
    }
    let mut ingested = 0usize;
    let started = Instant::now();
    while ingested < total_tuples {
        let outcome = engine.ingest(black_box(&batches[next])).expect("ingest");
        ingested += outcome.decisions.len();
        next = (next + 1) % batches.len();
    }
    (ingested, started.elapsed().as_secs_f64())
}

fn main() {
    let mut quick = false;
    let mut out = std::path::PathBuf::from("BENCH_stream.json");
    for arg in std::env::args().skip(1) {
        if arg == "--quick" {
            quick = true;
        } else if let Some(v) = arg.strip_prefix("--out=") {
            out = std::path::PathBuf::from(v);
        } else {
            panic!("unknown argument {arg}; expected --quick --out=<path>");
        }
    }
    let total = if quick { 100_000 } else { 1_000_000 };
    let mut configs = Vec::new();
    let mut record = |name: String, tuples: usize, secs: f64| {
        let rate = tuples as f64 / secs;
        println!("{name}: {tuples} tuples in {secs:.3}s = {rate:.0} tuples/sec");
        configs.push(serde_json::json!({
            "name": name,
            "tuples": tuples,
            "secs": secs,
            "tuples_per_sec": rate,
        }));
        rate
    };

    // Single-shard throughput across batch sizes.
    for &batch in &[512usize, 1_024, 4_096] {
        let batches = pregenerate(32, batch);
        let mut engine = fresh_engine(4_096);
        let (tuples, secs) = drive_single(&mut engine, &batches, total);
        record(format!("single_shard/batch={batch}"), tuples, secs);
    }

    // Window-size flatness: counters-not-scans, arena-not-boxes.
    for &window in &[256usize, 65_536] {
        let batches = pregenerate(32, 1_024);
        let mut engine = fresh_engine(window);
        let (tuples, secs) = drive_single(&mut engine, &batches, total);
        record(format!("window/{window}"), tuples, secs);
    }

    // Sharded aggregate throughput; scaling is reported relative to the
    // 1-shard configuration of the same router path.
    let mut base_rate = None;
    let mut scaling = Vec::new();
    for &shards in &[1usize, 2, 4] {
        let batches = pregenerate_sharded(shards, 16, 1_024);
        let mut engine = fresh_sharded_engine(4_096, shards);
        let (tuples, secs) = drive_sharded(&mut engine, &batches, total);
        let rate = record(format!("sharded/shards={shards}"), tuples, secs);
        let base = *base_rate.get_or_insert(rate);
        scaling.push(serde_json::json!({
            "shards": shards,
            "speedup_vs_1_shard": rate / base,
        }));
    }

    let artifact = serde_json::json!({
        "bench": "stream_ingest",
        "quick": quick,
        "configs": configs,
        "sharded_scaling": scaling,
    });
    let file = std::fs::File::create(&out).expect("create BENCH_stream.json");
    serde_json::to_writer_pretty(std::io::BufWriter::new(file), &artifact)
        .expect("serialise bench results");
    println!("[artifact] {}", out.display());
}
