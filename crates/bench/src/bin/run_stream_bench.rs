//! The stream-engine throughput trajectory: sustained tuples/sec through
//! the full `ingest` path (forward pass, conformance check, O(1) counters,
//! Page–Hinkley step) for the single-shard and sharded configurations, plus
//! the window-size flatness check and the sync-vs-async ingest-latency
//! comparison on a drifting (retraining) workload — written to
//! `BENCH_stream.json` so successive PRs can track the numbers.
//!
//! Arguments: `--quick` shrinks every workload for CI smoke runs;
//! `--out=<path>` overrides the artifact path (default:
//! `BENCH_stream.json` in the working directory). Workloads come from
//! `cf_bench::stream_load`, shared with the criterion bench.

use cf_bench::stream_load::{
    delayed_spec, drifting_spec, fresh_async_engine, fresh_degraded_async_engine, fresh_engine,
    fresh_feedback_engine, fresh_kary_engine, fresh_ladder_engine, fresh_monitoring_async_engine,
    fresh_retraining_engine, fresh_sharded_engine, kernel_problem, ladder_spec, percentile_us,
    pregenerate, pregenerate_delayed, pregenerate_from, pregenerate_kary, pregenerate_sharded,
};
use cf_datasets::stream::DriftStream;
use cf_learners::{Gbt, GbtConfig, Learner, LogisticRegression};
use cf_linalg::vector;
use cf_stream::{
    AsyncConfig, AsyncEngine, GroupLayout, RetrainPolicy, ShardedEngine, ShardedTuple,
    StreamEngine, StreamTuple,
};
use cf_telemetry::{shared_sink, NullSink, RingSink, TelemetryEvent};
use std::hint::black_box;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// The observability counters a live operator would scrape, captured at
/// the end of a bench row so the artifact records what the engine *did*
/// (alerts raised, retrains run, labels pending), not just how fast.
fn engine_observability(engine: &StreamEngine) -> serde_json::Value {
    serde_json::json!({
        "alerts": engine.alerts().len(),
        "retrains": engine.retrain_count(),
        "window_fill": engine.window_len(),
        "pending_labels": engine.pending_labels(),
    })
}

/// Drive `engine.ingest` over pregenerated batches until at least
/// `total_tuples` have flowed through; returns (tuples, seconds).
fn drive_single(
    engine: &mut StreamEngine,
    batches: &[Vec<StreamTuple>],
    total_tuples: usize,
) -> (usize, f64) {
    // Warm-up: ingest until the window is full, so the timed region is
    // the steady state (arena wrapped, no fill-phase allocations) for
    // every window size alike.
    let capacity = engine.config().window;
    let mut next = 0usize;
    while engine.window_len() < capacity {
        engine.ingest(&batches[next]).expect("warm-up ingest");
        next = (next + 1) % batches.len();
    }
    let mut ingested = 0usize;
    let started = Instant::now();
    while ingested < total_tuples {
        let outcome = engine.ingest(black_box(&batches[next])).expect("ingest");
        ingested += outcome.decisions.len();
        next = (next + 1) % batches.len();
    }
    (ingested, started.elapsed().as_secs_f64())
}

/// Like [`drive_single`], but folds an operator-facing intersectional
/// query into every timed batch: one windowed marginal per layout axis,
/// summed from the flat cell counters. This is the read path a live
/// dashboard scrapes, so its cost belongs inside the clock.
fn drive_single_with_marginals(
    engine: &mut StreamEngine,
    layout: &GroupLayout,
    batches: &[Vec<StreamTuple>],
    total_tuples: usize,
) -> (usize, f64) {
    let capacity = engine.config().window;
    let mut next = 0usize;
    while engine.window_len() < capacity {
        engine.ingest(&batches[next]).expect("warm-up ingest");
        next = (next + 1) % batches.len();
    }
    let mut ingested = 0usize;
    let started = Instant::now();
    while ingested < total_tuples {
        let outcome = engine.ingest(black_box(&batches[next])).expect("ingest");
        ingested += outcome.decisions.len();
        for axis in 0..layout.axes().len() {
            black_box(
                layout
                    .marginal(engine.window_counts(), axis)
                    .expect("marginal"),
            );
        }
        next = (next + 1) % batches.len();
    }
    (ingested, started.elapsed().as_secs_f64())
}

fn drive_sharded(
    engine: &mut ShardedEngine,
    batches: &[Vec<ShardedTuple>],
    total_tuples: usize,
) -> (usize, f64) {
    // Warm-up: every shard's window must be full before timing starts.
    let capacity = engine.shard(0).expect("shard 0").config().window;
    let shards = engine.shard_count();
    let mut next = 0usize;
    while (0..shards).any(|s| engine.shard(s as u32).expect("shard").window_len() < capacity) {
        engine.ingest(&batches[next]).expect("warm-up ingest");
        next = (next + 1) % batches.len();
    }
    let mut ingested = 0usize;
    let started = Instant::now();
    while ingested < total_tuples {
        let outcome = engine.ingest(black_box(&batches[next])).expect("ingest");
        ingested += outcome.decisions.len();
        next = (next + 1) % batches.len();
    }
    (ingested, started.elapsed().as_secs_f64())
}

/// The raw scoring-kernel rows: batch margin throughput of the flattened
/// SoA GBT traversal against its recursive reference, and of the 4-row
/// logistic scoring tile against the per-row dot loop it replaced — on
/// the same fitted models over the same pregenerated blocks, outside the
/// engine (no window, no counters), so the rows isolate exactly what the
/// kernel rewrites bought. Both pairs are asserted bit-identical before
/// the clock starts.
fn kernels(quick: bool) -> (Vec<serde_json::Value>, serde_json::Value) {
    let block = 8_192usize;
    let gbt_d = 16;
    let lr_d = 32;

    let (x_train, y, x_gbt) = kernel_problem(gbt_d, 4_000, block, 11);
    let mut gbt = Gbt::new(GbtConfig::default());
    gbt.fit(&x_train, &y, None).expect("gbt fit");

    let (x_train, y, x_lr) = kernel_problem(lr_d, 4_000, block, 13);
    let mut lr = LogisticRegression::default();
    lr.fit(&x_train, &y, None).expect("logistic fit");
    let (coef, intercept) = (lr.coefficients().to_vec(), lr.intercept());

    // Equivalence gates: a kernels row for a kernel that diverged from its
    // reference would be a benchmark of a wrong answer.
    let flat = gbt.predict_margin_rows(&x_gbt).expect("flat margins");
    let recursive = gbt
        .predict_margin_rows_recursive(&x_gbt)
        .expect("recursive margins");
    assert!(
        flat.iter()
            .zip(&recursive)
            .all(|(a, b)| a.to_bits() == b.to_bits()),
        "flat and recursive GBT margins diverged"
    );
    let tiles = x_lr
        .affine_margins(&coef, intercept)
        .expect("tiled margins");
    let scalar: Vec<f64> = x_lr
        .iter_rows()
        .map(|row| vector::dot(&coef, row) + intercept)
        .collect();
    assert!(
        tiles
            .iter()
            .zip(&scalar)
            .all(|(a, b)| a.to_bits() == b.to_bits()),
        "tiled and scalar logistic margins diverged"
    );

    let mut configs = Vec::new();
    let mut row = |name: &str, target: usize, pass: &mut dyn FnMut() -> usize| -> f64 {
        pass(); // warm-up pass, inside neither clock nor count
        let mut rows = 0;
        let started = Instant::now();
        while rows < target {
            rows += pass();
        }
        let secs = started.elapsed().as_secs_f64();
        let rate = rows as f64 / secs;
        println!("{name}: {rows} rows in {secs:.3}s = {rate:.0} rows/sec");
        configs.push(serde_json::json!({
            "name": name,
            "tuples": rows,
            "secs": secs,
            "tuples_per_sec": rate,
            "observability": serde_json::json!({
                "block_rows": block,
                "features": if name.contains("gbt") { gbt_d } else { lr_d },
            }),
        }));
        rate
    };

    // The recursive GBT walker is ~µs/row; give it a smaller target so the
    // row finishes while still timing hundreds of full blocks.
    let gbt_target = if quick { 100_000 } else { 1_000_000 };
    let lr_target = if quick { 2_000_000 } else { 20_000_000 };
    let gbt_recursive = row("kernels/gbt_recursive", gbt_target, &mut || {
        black_box(
            gbt.predict_margin_rows_recursive(black_box(&x_gbt))
                .expect("margins"),
        )
        .len()
    });
    let gbt_flat = row("kernels/gbt_flat", gbt_target, &mut || {
        black_box(gbt.predict_margin_rows(black_box(&x_gbt)).expect("margins")).len()
    });
    let lr_scalar = row("kernels/logistic_scalar", lr_target, &mut || {
        let margins: Vec<f64> = x_lr
            .iter_rows()
            .map(|r| vector::dot(black_box(&coef), r) + intercept)
            .collect();
        black_box(margins).len()
    });
    let lr_tiles = row("kernels/logistic_tiles", lr_target, &mut || {
        black_box(
            x_lr.affine_margins(black_box(&coef), intercept)
                .expect("margins"),
        )
        .len()
    });

    let summary = serde_json::json!({
        "workload": format!("raw batch margins, block={block}, gbt d={gbt_d} (60 trees, depth<=4), logistic d={lr_d}"),
        "gbt_flat_vs_recursive": gbt_flat / gbt_recursive,
        "logistic_tiles_vs_scalar": lr_tiles / lr_scalar,
    });
    (configs, summary)
}

/// The sync-vs-async comparison on a drifting workload with on-alert
/// retraining: the sync engine pays for monitoring (and the occasional
/// full ConFair retrain) inside every `ingest` call; the async engine
/// returns after the forward pass and lets the background monitor absorb
/// that work. Returns `(configs, summary)` JSON values.
fn latency_comparison(quick: bool) -> (Vec<serde_json::Value>, serde_json::Value) {
    let batch = 512;
    let n_batches = if quick { 40 } else { 200 };
    // Drift begins a third of the way in, so the workload covers the
    // stationary regime, the detection churn, and the retrain(s).
    let onset = (n_batches * batch / 3) as u64;
    let window = 4_096;
    let spec = drifting_spec(onset);
    let batches = pregenerate_from(spec, n_batches, batch);
    let total: usize = batches.iter().map(Vec::len).sum();

    let mut sync_engine = fresh_retraining_engine(window);
    let mut sync_lat = Vec::with_capacity(batches.len());
    let started = Instant::now();
    for b in &batches {
        let call = Instant::now();
        sync_engine.ingest(black_box(b)).expect("sync ingest");
        sync_lat.push(call.elapsed().as_secs_f64() * 1e6);
    }
    let sync_secs = started.elapsed().as_secs_f64();
    let sync_retrains = sync_engine.retrain_count();

    // A queue deep enough to absorb a full retrain's worth of scoring
    // (256 batches ≈ 13 ms of forward passes) keeps the score path from
    // inheriting the retrain stall through backpressure.
    let mut async_engine = fresh_async_engine(
        window,
        AsyncConfig {
            queue_depth: 256,
            ..AsyncConfig::default()
        },
    );
    let mut async_lat = Vec::with_capacity(batches.len());
    let started = Instant::now();
    for b in &batches {
        // `ingest_owned` is the zero-copy hand-off: a real pipeline owns
        // its arriving batches, so the clone here is bench scaffolding and
        // stays outside the per-call clock (the wall clock still pays it).
        let owned = b.clone();
        let call = Instant::now();
        async_engine
            .ingest_owned(black_box(owned))
            .expect("async ingest");
        async_lat.push(call.elapsed().as_secs_f64() * 1e6);
    }
    // Sustained throughput is honest only once the monitor has caught up:
    // the final flush is inside the timed region.
    async_engine.flush().expect("final flush");
    let async_secs = started.elapsed().as_secs_f64();
    let async_retrains = async_engine.retrain_count();
    let dropped = async_engine.dropped();

    let mut configs = Vec::new();
    let mut stats = |name: &str,
                     lat: &[f64],
                     secs: f64,
                     retrains: u64,
                     obs: serde_json::Value|
     -> (f64, f64, f64) {
        let (p50, p99) = (percentile_us(lat, 50.0), percentile_us(lat, 99.0));
        let max = lat.iter().cloned().fold(0.0, f64::max);
        let rate = total as f64 / secs;
        println!(
            "{name}: p50 {p50:.1}µs  p99 {p99:.1}µs  max {max:.0}µs  \
             {rate:.0} tuples/sec sustained  ({retrains} retrains)"
        );
        configs.push(serde_json::json!({
            "name": name,
            "tuples": total,
            "batch": batch,
            "secs": secs,
            "tuples_per_sec": rate,
            "ingest_p50_us": p50,
            "ingest_p99_us": p99,
            "ingest_max_us": max,
            "retrains": retrains,
            "observability": obs,
        }));
        (p50, p99, rate)
    };
    let (sync_p50, sync_p99, sync_rate) = stats(
        "latency/sync_drift",
        &sync_lat,
        sync_secs,
        sync_retrains,
        engine_observability(&sync_engine),
    );
    let (async_p50, async_p99, async_rate) = stats(
        "latency/async_drift",
        &async_lat,
        async_secs,
        async_retrains,
        serde_json::json!({
            "alerts": async_engine.alerts().len(),
            "retrains": async_retrains,
            "monitor_lag_after_flush": async_engine.monitor_lag(),
            "dropped_batches": dropped.batches,
            "dropped_tuples": dropped.tuples,
        }),
    );

    let summary = serde_json::json!({
        "workload": "drifting, on-alert retraining, batch=512",
        "p50_speedup": sync_p50 / async_p50,
        "p99_speedup": sync_p99 / async_p99,
        "throughput_ratio_async_vs_sync": async_rate / sync_rate,
        "async_dropped_batches": dropped.batches,
        "async_dropped_tuples": dropped.tuples,
    });
    (configs, summary)
}

/// The robustness row: sustained async ingest throughput while serving
/// in degraded mode, against a monitoring-only twin on identical
/// stationary batches. The faulted engine's DI* floor can never be met
/// and every retrain attempt fails, so its first repair episode exhausts
/// the budget during warm-up and the entire timed region serves degraded
/// (with further failing episodes recurring at the floor cooldown). The
/// row exists to show degraded mode is a flag, not a slow path —
/// throughput should stay within a few percent of the healthy baseline.
fn degraded_mode(quick: bool) -> (Vec<serde_json::Value>, serde_json::Value) {
    let batch = 512;
    let window = 4_096;
    let total = if quick { 500_000 } else { 2_000_000 };
    let batches = pregenerate(32, batch);
    let async_config = AsyncConfig {
        queue_depth: 256,
        ..AsyncConfig::default()
    };

    let mut configs = Vec::new();
    let mut run = |name: &str, mut engine: AsyncEngine| -> (f64, bool, u64) {
        // Warm-up outside the clock: fill the window (which also walks
        // the faulted engine into degraded mode) and let the monitor
        // catch up, so the timed region is the steady serving state.
        let mut next = 0usize;
        let mut warmed = 0usize;
        while warmed < window {
            warmed += engine
                .ingest_owned(batches[next].clone())
                .expect("warm-up ingest")
                .len();
            next = (next + 1) % batches.len();
        }
        engine.flush().expect("warm-up flush");

        let mut ingested = 0usize;
        let started = Instant::now();
        while ingested < total {
            ingested += engine
                .ingest_owned(black_box(batches[next].clone()))
                .expect("ingest")
                .len();
            next = (next + 1) % batches.len();
        }
        // Sustained throughput is honest only once the monitor has caught
        // up: the final flush is inside the timed region.
        engine.flush().expect("final flush");
        let secs = started.elapsed().as_secs_f64();
        let rate = ingested as f64 / secs;
        let (degraded, failures) = (engine.is_degraded(), engine.retrain_failure_count());
        println!(
            "{name}: {ingested} tuples in {secs:.3}s = {rate:.0} tuples/sec  \
             (degraded: {degraded}, retrain failures: {failures})"
        );
        configs.push(serde_json::json!({
            "name": name,
            "tuples": ingested,
            "batch": batch,
            "secs": secs,
            "tuples_per_sec": rate,
            "observability": serde_json::json!({
                "alerts": engine.alerts().len(),
                "retrains": engine.retrain_count(),
                "retrain_failures": failures,
                "degraded": degraded,
                "monitor_restarts": engine.monitor_restarts(),
                "monitor_gap_tuples": engine.monitor_gap_tuples(),
                "monitor_lag_after_flush": engine.monitor_lag(),
            }),
        }));
        (rate, degraded, failures)
    };

    let (healthy_rate, _, _) = run(
        "robustness/async_baseline",
        fresh_monitoring_async_engine(window, async_config),
    );
    let (degraded_rate, degraded, failures) = run(
        "robustness/degraded_mode",
        fresh_degraded_async_engine(window, async_config),
    );
    assert!(degraded, "the faulted engine must end the run degraded");
    assert!(
        failures > 0,
        "the faulted engine must have burned its budget"
    );

    let summary = serde_json::json!({
        "workload": "stationary, monitoring-only baseline vs always-failing repair, batch=512",
        "throughput_ratio_degraded_vs_healthy": degraded_rate / healthy_rate,
    });
    (configs, summary)
}

/// The repair-ladder recovery rows: how much repair work each rung
/// spends taking a floor-breaking drift episode back to health, read
/// off the `repair_end` trail event that closes the episode. For the
/// cheap rungs (`nudge`, `projection`) `recovery_us` is the episode's
/// accumulated repair work — threshold recomputes and the projection
/// install, the only serving-path cost the repair adds; for `retrain`
/// it is the wall clock of the tier-3 retrain episode. Each scenario is
/// deterministic (same reference, seed, and stream shape as the ladder
/// test suite, at the serving rows' window of 4096); the row keeps the minimum of three fresh
/// episodes so clock jitter cannot masquerade as a recovery-time
/// regression. The whole point of the ladder is the spread between
/// these rows: the nudge must come in at least 100x under the retrain.
fn repair_recovery() -> (Vec<serde_json::Value>, serde_json::Value) {
    let mut configs = Vec::new();
    let mut row = |name: &str,
                   retrain: RetrainPolicy,
                   patience: u32,
                   nudge_max: f64,
                   di_floor: f64,
                   drift_group: u8,
                   tier: &str,
                   outcome: &str|
     -> f64 {
        let mut best: Option<(u64, usize)> = None;
        let mut retrains = 0u64;
        for _ in 0..3 {
            let mut engine =
                fresh_ladder_engine(retrain, patience, nudge_max, di_floor, drift_group);
            let ring = Arc::new(Mutex::new(RingSink::new(1 << 14)));
            let sink: cf_telemetry::SharedSink = ring.clone();
            engine.set_sink(sink);
            let mut stream = DriftStream::new(ladder_spec(drift_group), 9);
            let mut closed = None;
            for batch_no in 0..400 {
                let batch =
                    StreamTuple::rows_from_dataset(&stream.next_batch(64)).expect("numeric");
                engine.ingest(black_box(&batch)).expect("ingest");
                let end = ring
                    .lock()
                    .expect("ring")
                    .events()
                    .iter()
                    .find_map(|e| match e {
                        TelemetryEvent::RepairEnd(s) if s.tier == tier && s.outcome == outcome => {
                            Some(s.duration_us)
                        }
                        _ => None,
                    });
                if let Some(us) = end {
                    closed = Some((us, batch_no + 1));
                    break;
                }
            }
            let closed = closed.unwrap_or_else(|| panic!("{name}: episode never closed"));
            if best.is_none_or(|b| closed.0 < b.0) {
                best = Some(closed);
            }
            retrains = engine.retrain_count();
        }
        let (recovery_us, batches) = best.expect("three episodes ran");
        println!(
            "{name}: recovered in {recovery_us}us of repair work \
             ({batches} batches to close, {retrains} retrains)"
        );
        configs.push(serde_json::json!({
            "name": name,
            "recovery_us": recovery_us,
            "batches_to_recovery": batches,
            "observability": serde_json::json!({
                "tier": tier,
                "outcome": outcome,
                "retrains": retrains,
                "window": 4_096,
            }),
        }));
        recovery_us as f64
    };

    // Tier 1 alone: generous headroom, effectively-infinite patience.
    let nudge_us = row(
        "repair/nudge",
        RetrainPolicy::Never,
        200,
        6.0,
        0.8,
        1,
        "threshold_nudge",
        "recovered",
    );
    // Tier 2 closes: tier 1 impotent, no retrain policy, and a majority
    // drift (group 0, tighter floor) — the shape the projection cures.
    let projection_us = row(
        "repair/projection",
        RetrainPolicy::Never,
        3,
        0.0,
        0.95,
        0,
        "difffair_projection",
        "recovered",
    );
    // Tier 3: both cheap rungs impotent, on-alert policy → full retrain.
    let retrain_us = row(
        "repair/retrain",
        RetrainPolicy::OnAlert { min_window: 2_048 },
        3,
        0.0,
        0.8,
        1,
        "confair_retrain",
        "retrained",
    );

    assert!(
        nudge_us * 100.0 <= retrain_us,
        "the ladder's premise failed: nudge recovery ({nudge_us}us) is not \
         100x cheaper than a retrain ({retrain_us}us)"
    );
    let summary = serde_json::json!({
        "workload": "drifting, DI* floor breach, window=4096, batch=64, min of 3 episodes",
        "nudge_vs_retrain_speedup": retrain_us / nudge_us,
        "projection_vs_retrain_speedup": retrain_us / projection_us,
    });
    (configs, summary)
}

/// The delayed-label join cost: unlabeled ingest with labels trailing by
/// 6k–16k tuples (window 4,096 — most joins land through the pending
/// index, the costliest path). Measures the `feedback` call itself:
/// latency percentiles per call and sustained joins/sec.
fn feedback_join(quick: bool) -> serde_json::Value {
    let batch = 512;
    let n_batches = if quick { 60 } else { 240 };
    let window = 4_096;
    let batches = pregenerate_delayed(delayed_spec(6_000, 16_000), n_batches, batch);
    let mut engine = fresh_feedback_engine(window, 16_384);

    let mut joins = 0u64;
    let mut lat = Vec::with_capacity(batches.len());
    let mut join_secs = 0.0f64;
    for (tuples, feedback) in &batches {
        engine.ingest(black_box(tuples)).expect("ingest");
        let call = Instant::now();
        let outcome = engine.feedback(black_box(feedback)).expect("feedback");
        let elapsed = call.elapsed().as_secs_f64();
        if !feedback.is_empty() {
            lat.push(elapsed * 1e6);
        }
        join_secs += elapsed;
        joins += outcome.joined;
    }
    let stats = engine.join_stats();
    assert_eq!(stats.unmatched, 0, "pending index sized for the full lag");
    let (p50, p99) = (percentile_us(&lat, 50.0), percentile_us(&lat, 99.0));
    let rate = joins as f64 / join_secs;
    println!("latency/feedback_join: p50 {p50:.1}µs  p99 {p99:.1}µs per feedback batch  {rate:.0} joins/sec sustained  ({stats})");
    serde_json::json!({
        "name": "latency/feedback_join",
        "batch": batch,
        "window": window,
        "pending_labels": 16_384,
        "labels_joined": joins,
        "joined_late": stats.joined_late,
        "join_secs": join_secs,
        "joins_per_sec": rate,
        "feedback_p50_us": p50,
        "feedback_p99_us": p99,
        "observability": serde_json::json!({
            "joined": stats.joined,
            "joined_late": stats.joined_late,
            "duplicates": stats.duplicates,
            "unmatched": stats.unmatched,
            "pending_evicted": stats.pending_evicted,
            "pending_backlog": engine.pending_labels(),
        }),
    })
}

fn main() {
    let mut quick = false;
    let mut out = std::path::PathBuf::from("BENCH_stream.json");
    for arg in std::env::args().skip(1) {
        if arg == "--quick" {
            quick = true;
        } else if let Some(v) = arg.strip_prefix("--out=") {
            out = std::path::PathBuf::from(v);
        } else {
            panic!("unknown argument {arg}; expected --quick --out=<path>");
        }
    }
    let total = if quick { 100_000 } else { 1_000_000 };
    let mut configs = Vec::new();
    let mut record = |name: String, tuples: usize, secs: f64, obs: serde_json::Value| {
        let rate = tuples as f64 / secs;
        println!("{name}: {tuples} tuples in {secs:.3}s = {rate:.0} tuples/sec");
        configs.push(serde_json::json!({
            "name": name,
            "tuples": tuples,
            "secs": secs,
            "tuples_per_sec": rate,
            "observability": obs,
        }));
        rate
    };

    // Single-shard throughput across batch sizes.
    let mut bare_1024_rate = None;
    for &batch in &[512usize, 1_024, 4_096] {
        let batches = pregenerate(32, batch);
        let mut engine = fresh_engine(4_096);
        let (tuples, secs) = drive_single(&mut engine, &batches, total);
        let rate = record(
            format!("single_shard/batch={batch}"),
            tuples,
            secs,
            engine_observability(&engine),
        );
        if batch == 1_024 {
            bare_1024_rate = Some(rate);
        }
    }
    let bare_1024_rate = bare_1024_rate.expect("batch=1024 row runs");

    // Telemetry overhead on the same workload as single_shard/batch=1024:
    // no sink must cost nothing (the delta bookkeeping is skipped
    // entirely), the NullSink isolates the lock + bookkeeping cost, the
    // RingSink adds event construction. All should stay within a few
    // percent of the bare rate.
    let mut telemetry_overhead = Vec::new();
    for (label, sink) in [
        ("null_sink", shared_sink(NullSink)),
        ("ring_sink", shared_sink(RingSink::new(4_096))),
    ] {
        let batches = pregenerate(32, 1_024);
        let mut engine = fresh_engine(4_096);
        engine.set_sink(sink);
        let (tuples, secs) = drive_single(&mut engine, &batches, total);
        let rate = record(
            format!("telemetry/{label}+batch=1024"),
            tuples,
            secs,
            engine_observability(&engine),
        );
        telemetry_overhead.push(serde_json::json!({
            "sink": label,
            "throughput_vs_bare": rate / bare_1024_rate,
        }));
    }

    // Window-size flatness: counters-not-scans, arena-not-boxes.
    for &window in &[256usize, 65_536] {
        let batches = pregenerate(32, 1_024);
        let mut engine = fresh_engine(window);
        let (tuples, secs) = drive_single(&mut engine, &batches, total);
        record(
            format!("window/{window}"),
            tuples,
            secs,
            engine_observability(&engine),
        );
    }

    // K-ary ingest cost: the per-tuple counter update is one cell
    // increment — O(1) in K — so monitoring 8 intersection cells must
    // ingest within a few percent of monitoring 2. The third row folds
    // a windowed 2×4 marginal read (both axes) into every batch: the
    // intersectional query an operator dashboard scrapes. The ratio
    // claim needs more care than the absolute rows: each row drives 4×
    // the standard tuple count and keeps the best of three timed passes
    // (the window stays warm between passes), so a sub-100ms scheduler
    // hiccup cannot masquerade as a K-dependent ingest cost.
    let kary_total = total * 4;
    let layout = GroupLayout::new(vec![2, 4]).expect("2x4 layout");
    let mut kary_rates = Vec::new();
    let mut kary_row =
        |name: &str,
         engine: &mut StreamEngine,
         drive: &mut dyn FnMut(&mut StreamEngine) -> (usize, f64)| {
            let (mut tuples, mut secs) = drive(engine);
            for _ in 1..3 {
                let (t, s) = drive(engine);
                if (t as f64 / s) > (tuples as f64 / secs) {
                    (tuples, secs) = (t, s);
                }
            }
            kary_rates.push(record(
                name.to_string(),
                tuples,
                secs,
                engine_observability(engine),
            ));
        };
    for &(label, groups) in &[("k2", 2usize), ("k8", 8)] {
        let batches = pregenerate_kary(groups, 32, 1_024);
        let mut engine = fresh_kary_engine(4_096, groups);
        kary_row(&format!("kary/{label}"), &mut engine, &mut |e| {
            drive_single(e, &batches, kary_total)
        });
    }
    {
        let batches = pregenerate_kary(layout.cells(), 32, 1_024);
        let mut engine = fresh_kary_engine(4_096, layout.cells());
        kary_row("kary/k8_intersections", &mut engine, &mut |e| {
            drive_single_with_marginals(e, &layout, &batches, kary_total)
        });
    }
    let kary_overhead = serde_json::json!({
        "workload": "stationary, monitoring only, batch=1024, window=4096",
        "k8_vs_k2": kary_rates[1] / kary_rates[0],
        "k8_intersections_vs_k2": kary_rates[2] / kary_rates[0],
    });

    // Sharded aggregate throughput; scaling is reported relative to the
    // 1-shard configuration of the same router path.
    let mut base_rate = None;
    let mut scaling = Vec::new();
    for &shards in &[1usize, 2, 4] {
        let batches = pregenerate_sharded(shards, 16, 1_024);
        let mut engine = fresh_sharded_engine(4_096, shards);
        let (tuples, secs) = drive_sharded(&mut engine, &batches, total);
        let obs: Vec<serde_json::Value> = (0..shards)
            .map(|s| engine_observability(engine.shard(s as u32).expect("shard")))
            .collect();
        let rate = record(
            format!("sharded/shards={shards}"),
            tuples,
            secs,
            serde_json::json!({ "per_shard": obs }),
        );
        let base = *base_rate.get_or_insert(rate);
        scaling.push(serde_json::json!({
            "shards": shards,
            "speedup_vs_1_shard": rate / base,
        }));
    }

    // Raw scoring-kernel throughput (flat GBT vs recursive, logistic
    // tiles vs scalar), outside the engine.
    let (kernel_configs, kernel_summary) = kernels(quick);
    configs.extend(kernel_configs);

    // Sync vs async ingest-path latency on the drifting workload.
    let (latency_configs, async_vs_sync) = latency_comparison(quick);
    configs.extend(latency_configs);

    // Degraded-mode serving throughput vs the healthy async baseline.
    let (robustness_configs, degraded_summary) = degraded_mode(quick);
    configs.extend(robustness_configs);

    // Late-label join cost through the pending index.
    configs.push(feedback_join(quick));

    // Repair-ladder recovery work per rung (same cost quick or full —
    // the scenarios are a few hundred 64-tuple batches).
    let (repair_configs, repair_summary) = repair_recovery();
    configs.extend(repair_configs);

    let artifact = serde_json::json!({
        "bench": "stream_ingest",
        "quick": quick,
        "configs": configs,
        "kernels": kernel_summary,
        "sharded_scaling": scaling,
        "kary_overhead": kary_overhead,
        "async_vs_sync": async_vs_sync,
        "degraded_mode": degraded_summary,
        "telemetry_overhead": telemetry_overhead,
        "repair_ladder": repair_summary,
    });
    let file = std::fs::File::create(&out).expect("create BENCH_stream.json");
    serde_json::to_writer_pretty(std::io::BufWriter::new(file), &artifact)
        .expect("serialise bench results");
    println!("[artifact] {}", out.display());
}
