//! Regenerates the paper's Fig. 14 (see cf_bench::figures::fig14).
fn main() {
    let cfg = cf_bench::ExpConfig::from_args();
    cf_bench::figures::fig14::run(&cfg);
}
