//! Regenerates the paper's Fig. 07 (see cf_bench::figures::fig07).
fn main() {
    let cfg = cf_bench::ExpConfig::from_args();
    cf_bench::figures::fig07::run(&cfg);
}
