//! Regenerates the paper's Fig. 13 (see cf_bench::figures::fig13).
fn main() {
    let cfg = cf_bench::ExpConfig::from_args();
    cf_bench::figures::fig13::run(&cfg);
}
