//! Runs every experiment in sequence — the full reproduction sweep.
fn main() {
    let cfg = cf_bench::ExpConfig::from_args();
    let t0 = std::time::Instant::now();
    println!("# ConFair reproduction: full experiment sweep");
    println!(
        "# scale={} reps={} seed={}\n",
        cfg.scale, cfg.reps, cfg.seed
    );
    cf_bench::figures::fig02::run(&cfg);
    cf_bench::figures::fig04::run(&cfg);
    cf_bench::figures::fig05::run(&cfg);
    cf_bench::figures::fig06::run(&cfg);
    cf_bench::figures::fig07::run(&cfg);
    cf_bench::figures::fig08::run(&cfg);
    cf_bench::figures::fig09::run(&cfg);
    cf_bench::figures::fig10::run(&cfg);
    cf_bench::figures::fig11::run(&cfg);
    cf_bench::figures::fig12::run(&cfg);
    cf_bench::figures::fig13::run(&cfg);
    cf_bench::figures::fig14::run(&cfg);
    println!("\n# total wall time: {:.1}s", t0.elapsed().as_secs_f64());
}
