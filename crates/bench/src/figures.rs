//! One submodule per paper table/figure; each exposes `run(&ExpConfig)`.
//!
//! The printed output mirrors the corresponding figure's panels: the same
//! methods, the same datasets, the same metrics — so a side-by-side read
//! against the paper is direct. JSON artifacts land in `results/`.

use crate::{config::ExpConfig, runner};
use cf_data::Dataset;
use cf_datasets::realsim::RealWorldSpec;
use cf_learners::LearnerKind;
use cf_metrics::FairnessReport;

/// The seven benchmark names in the paper's column order.
pub const REAL_DATASETS: [&str; 7] = ["MEPS", "LSAC", "Credit", "ACSP", "ACSH", "ACSE", "ACSI"];

/// Generate every real-world simulator at the configured scale.
pub fn real_datasets(cfg: &ExpConfig) -> Vec<Dataset> {
    RealWorldSpec::all()
        .iter()
        .map(|s| s.generate_scaled(cfg.scale, cfg.seed))
        .collect()
}

/// Print the three panels (DI, AOD, BalAcc) for one learner.
fn print_learner_panels(
    fig: &str,
    results: &[runner::CellOutcome],
    datasets: &[&str],
    methods: &[&str],
    learner: LearnerKind,
) {
    let l = learner.name();
    runner::print_panel(
        &format!("{fig}: Disparate Impact (DI*), {l} models"),
        results,
        datasets,
        methods,
        l,
        |r: &FairnessReport| r.di_star,
    );
    runner::print_panel(
        &format!("{fig}: Average Odds Difference (AOD*), {l} models"),
        results,
        datasets,
        methods,
        l,
        |r: &FairnessReport| r.aod_star,
    );
    runner::print_panel(
        &format!("{fig}: Balanced Accuracy, {l} models"),
        results,
        datasets,
        methods,
        l,
        |r: &FairnessReport| r.balanced_accuracy,
    );
}

/// Fig. 2 — the qualitative comparison table (static properties).
pub mod fig02 {
    use super::ExpConfig;

    /// Print the paper's Fig. 2 property matrix.
    pub fn run(_cfg: &ExpConfig) {
        println!("## Fig. 2: qualitative comparison of reweighing interventions");
        println!(
            "{:<28} {:>5} {:>5} {:>5} {:>5} {:>5} {:>8}",
            "property", "DRO", "LAH", "CAP", "KAM", "OMN", "ConFair"
        );
        let rows = [
            (
                "non-invasive wrt data",
                ["yes", "yes", "no", "yes", "yes", "yes"],
            ),
            (
                "non-invasive wrt model",
                ["no", "no", "yes", "yes", "yes", "yes"],
            ),
            (
                "flexible intervention",
                ["no", "no", "no", "no", "yes", "yes"],
            ),
            (
                "intra-group variability",
                ["yes", "yes", "no", "no", "no", "yes"],
            ),
        ];
        for (prop, vals) in rows {
            println!(
                "{:<28} {:>5} {:>5} {:>5} {:>5} {:>5} {:>8}",
                prop, vals[0], vals[1], vals[2], vals[3], vals[4], vals[5]
            );
        }
    }
}

/// Fig. 4 — dataset summary statistics.
pub mod fig04 {
    use super::*;

    /// Generate every simulator and print its measured Fig. 4 row next to
    /// the paper's target statistics.
    pub fn run(cfg: &ExpConfig) {
        println!(
            "## Fig. 4: dataset summary (measured at scale {})",
            cfg.scale
        );
        println!(
            "{:<8} {:>8} {:>6} {:>6} {:>10} {:>10} {:>12} {:>12}",
            "dataset", "size", "#num", "#cat", "minority%", "target%", "U-positive%", "target%"
        );
        let mut rows = Vec::new();
        for spec in RealWorldSpec::all() {
            let d = spec.generate_scaled(cfg.scale, cfg.seed);
            let s = d.summary();
            println!(
                "{:<8} {:>8} {:>6} {:>6} {:>9.1}% {:>9.1}% {:>11.1}% {:>11.1}%",
                s.name,
                s.size,
                s.numeric_attrs,
                s.categorical_attrs,
                100.0 * s.minority_fraction,
                100.0 * spec.minority_fraction,
                100.0 * s.minority_positive_fraction,
                100.0 * spec.minority_pos_rate,
            );
            rows.push((s, spec.minority_fraction, spec.minority_pos_rate));
        }
        let json: Vec<_> = rows
            .iter()
            .map(|(s, mf, mp)| {
                serde_json::json!({
                    "dataset": s.name,
                    "size": s.size,
                    "numeric_attrs": s.numeric_attrs,
                    "categorical_attrs": s.categorical_attrs,
                    "minority_fraction": s.minority_fraction,
                    "minority_fraction_target": mf,
                    "minority_positive_fraction": s.minority_positive_fraction,
                    "minority_positive_fraction_target": mp,
                })
            })
            .collect();
        cfg.save_json("fig04_datasets", &json);
    }
}

/// Fig. 5 — ConFair vs KAM across all datasets and both learners.
pub mod fig05 {
    use super::*;

    /// Methods in the paper's bar order.
    pub const METHODS: [&str; 3] = ["NoIntervention", "KAM", "ConFair"];

    /// Run the grid and print the six panels.
    pub fn run(cfg: &ExpConfig) {
        let datasets = real_datasets(cfg);
        let spec = runner::GridSpec {
            datasets: &datasets,
            methods: &METHODS,
            learners: &LearnerKind::both(),
            reps: cfg.reps,
            seed: cfg.seed,
        };
        let results = runner::run_grid(&spec);
        for learner in LearnerKind::both() {
            print_learner_panels("Fig. 5", &results, &REAL_DATASETS, &METHODS, learner);
        }
        cfg.save_json("fig05_confair_vs_kam", &results);
    }
}

/// Fig. 6 — ConFair vs OMN and CAP.
pub mod fig06 {
    use super::*;

    /// Methods in the paper's bar order.
    pub const METHODS: [&str; 4] = ["NoIntervention", "OMN", "CAP", "ConFair"];

    /// Run the grid and print the six panels.
    pub fn run(cfg: &ExpConfig) {
        let datasets = real_datasets(cfg);
        let spec = runner::GridSpec {
            datasets: &datasets,
            methods: &METHODS,
            learners: &LearnerKind::both(),
            reps: cfg.reps,
            seed: cfg.seed,
        };
        let results = runner::run_grid(&spec);
        for learner in LearnerKind::both() {
            print_learner_panels("Fig. 6", &results, &REAL_DATASETS, &METHODS, learner);
        }
        cfg.save_json("fig06_confair_omn_cap", &results);
    }
}

/// Fig. 7 — weights calibrated with one learner, deployed on the other.
pub mod fig07 {
    use super::*;
    use rayon::prelude::*;

    /// Run both cross-model settings and print the panels.
    pub fn run(cfg: &ExpConfig) {
        let datasets = real_datasets(cfg);
        // (calibrator, deployer) pairs: Figs 7a–c calibrate on XGB, train LR;
        // Figs 7d–f the reverse.
        let settings = [
            (LearnerKind::Gbt, LearnerKind::Logistic),
            (LearnerKind::Logistic, LearnerKind::Gbt),
        ];
        let mut all = Vec::new();
        for (calibrator, deployer) in settings {
            let cells: Vec<(usize, &str)> = (0..datasets.len())
                .flat_map(|d| ["ConFair", "OMN", "NoIntervention"].map(|m| (d, m)))
                .collect();
            let mut results: Vec<runner::CellOutcome> = cells
                .par_iter()
                .filter_map(|&(d, m)| {
                    let method: Box<dyn confair_core::Intervention> = match m {
                        "ConFair" => runner::make_confair_cross(calibrator),
                        "OMN" => runner::make_omn_cross(calibrator),
                        _ => runner::make_method(m),
                    };
                    runner::run_cell(&datasets[d], method.as_ref(), deployer, cfg.reps, cfg.seed)
                })
                .collect();
            results.sort_by(|a, b| {
                (&a.report.dataset, &a.report.method).cmp(&(&b.report.dataset, &b.report.method))
            });
            let title = format!(
                "Fig. 7: calibrate on {}, deploy {}",
                calibrator.name(),
                deployer.name()
            );
            runner::print_panel(
                &format!("{title} — DI*"),
                &results,
                &REAL_DATASETS,
                &["NoIntervention", "OMN", "ConFair"],
                deployer.name(),
                |r| r.di_star,
            );
            runner::print_panel(
                &format!("{title} — AOD*"),
                &results,
                &REAL_DATASETS,
                &["NoIntervention", "OMN", "ConFair"],
                deployer.name(),
                |r| r.aod_star,
            );
            runner::print_panel(
                &format!("{title} — BalAcc"),
                &results,
                &REAL_DATASETS,
                &["NoIntervention", "OMN", "ConFair"],
                deployer.name(),
                |r| r.balanced_accuracy,
            );
            all.extend(results);
        }
        cfg.save_json("fig07_cross_model", &all);
    }
}

/// Figs. 8 & 9 — intervention-degree sweeps (shared implementation).
pub mod sweep {
    use super::*;
    use cf_baselines::omn::{OmniFair, OmniFairConfig};
    use cf_metrics::GroupConfusion;
    use confair_core::{
        confair::{AlphaMode, ConFair, ConFairConfig, FairnessTarget},
        evaluate_repeated, Intervention, Pipeline,
    };
    use rayon::prelude::*;
    use serde::Serialize;

    /// One point of a sweep series.
    #[derive(Debug, Clone, Serialize)]
    pub struct SweepPoint {
        /// Method ("ConFair" or "OMN").
        pub method: String,
        /// Target metric label.
        pub target: String,
        /// The intervention degree (α_u or λ).
        pub degree: f64,
        /// The target metric's value on the minority.
        pub metric_minority: f64,
        /// The target metric's value on the majority.
        pub metric_majority: f64,
        /// Balanced accuracy.
        pub balanced_accuracy: f64,
    }

    fn group_metric(target: FairnessTarget, gc: &GroupConfusion) -> (f64, f64) {
        match target {
            FairnessTarget::DisparateImpact => {
                (gc.minority.selection_rate(), gc.majority.selection_rate())
            }
            FairnessTarget::EqOddsFnr => (gc.minority.fnr(), gc.majority.fnr()),
            FairnessTarget::EqOddsFpr => (gc.minority.fpr(), gc.majority.fpr()),
        }
    }

    /// Run the six panels of Fig. 8/9 for one dataset.
    pub fn run_for(dataset_name: &str, fig: &str, cfg: &ExpConfig) {
        let spec = RealWorldSpec::by_name(dataset_name).expect("known dataset");
        let data = spec.generate_scaled(cfg.scale, cfg.seed);
        let alphas = [0.0, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0];
        let lambdas = [0.0, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0, 4.0];
        let targets = [
            FairnessTarget::DisparateImpact,
            FairnessTarget::EqOddsFnr,
            FairnessTarget::EqOddsFpr,
        ];

        let mut jobs: Vec<(&'static str, FairnessTarget, f64)> = Vec::new();
        for &t in &targets {
            for &a in &alphas {
                jobs.push(("ConFair", t, a));
            }
            for &l in &lambdas {
                jobs.push(("OMN", t, l));
            }
        }

        let mut points: Vec<SweepPoint> = jobs
            .par_iter()
            .filter_map(|&(method, target, degree)| {
                let intervention: Box<dyn Intervention> = match method {
                    "ConFair" => Box::new(ConFair::new(ConFairConfig {
                        // The paper's sweeps fix α_w = 0 and move α_u only.
                        alpha: AlphaMode::Fixed {
                            alpha_u: degree,
                            alpha_w: 0.0,
                        },
                        target,
                        ..ConFairConfig::default()
                    })),
                    _ => Box::new(OmniFair::new(OmniFairConfig {
                        target,
                        fixed_lambda: Some(degree),
                        ..OmniFairConfig::default()
                    })),
                };
                let outcomes = evaluate_repeated(
                    &data,
                    intervention.as_ref(),
                    LearnerKind::Logistic,
                    Pipeline::paper_default(),
                    cfg.seed,
                    cfg.reps,
                )
                .ok()?;
                let mut mm = 0.0;
                let mut mw = 0.0;
                let mut ba = 0.0;
                for o in &outcomes {
                    let (u, w) = group_metric(target, &o.confusion);
                    mm += u;
                    mw += w;
                    ba += o.report.balanced_accuracy;
                }
                let n = outcomes.len() as f64;
                Some(SweepPoint {
                    method: method.to_string(),
                    target: target.label().to_string(),
                    degree,
                    metric_minority: mm / n,
                    metric_majority: mw / n,
                    balanced_accuracy: ba / n,
                })
            })
            .collect();
        points.sort_by(|a, b| {
            (&a.method, &a.target)
                .cmp(&(&b.method, &b.target))
                .then(a.degree.partial_cmp(&b.degree).expect("finite degree"))
        });

        for method in ["ConFair", "OMN"] {
            for target in targets {
                println!(
                    "\n## {fig}: {method} targets {} on {dataset_name} (LR)",
                    target.label()
                );
                println!(
                    "{:>8} {:>12} {:>12} {:>8}",
                    if method == "ConFair" {
                        "alpha_u"
                    } else {
                        "lambda"
                    },
                    "minority",
                    "majority",
                    "BalAcc"
                );
                for p in points
                    .iter()
                    .filter(|p| p.method == method && p.target == target.label())
                {
                    println!(
                        "{:>8} {:>12.3} {:>12.3} {:>8.3}",
                        p.degree, p.metric_minority, p.metric_majority, p.balanced_accuracy
                    );
                }
            }
        }
        cfg.save_json(&format!("{fig}_{}", dataset_name.to_lowercase()), &points);
    }
}

/// Fig. 8 — sweep on MEPS.
pub mod fig08 {
    use super::*;

    /// Run the MEPS sweep.
    pub fn run(cfg: &ExpConfig) {
        sweep::run_for("MEPS", "fig08", cfg);
    }
}

/// Fig. 9 — sweep on LSAC.
pub mod fig09 {
    use super::*;

    /// Run the LSAC sweep.
    pub fn run(cfg: &ExpConfig) {
        sweep::run_for("LSAC", "fig09", cfg);
    }
}

/// Fig. 10 — the synthetic drift dataset (scatter data + statistics).
pub mod fig10 {
    use super::*;
    use cf_datasets::synthgen::syn_drift_scaled;

    /// Generate Syn1, dump it as CSV, and print per-cell statistics.
    pub fn run(cfg: &ExpConfig) {
        let d = syn_drift_scaled(1, cfg.scale.min(1.0), cfg.seed);
        println!("## Fig. 10: Syn1 synthetic dataset (n = {})", d.len());
        println!(
            "{:>6} {:>6} {:>10} {:>10} {:>10} {:>10}",
            "group", "label", "mean X1", "mean X2", "std X1", "std X2"
        );
        for cell in cf_data::CellIndex::binary_cells() {
            let idx = d.cell_indices(cell);
            let m = d.numeric_matrix(Some(&idx));
            let x1 = m.col(0);
            let x2 = m.col(1);
            println!(
                "{:>6} {:>6} {:>10.3} {:>10.3} {:>10.3} {:>10.3}",
                cell.group,
                cell.label,
                cf_linalg::vector::mean(&x1),
                cf_linalg::vector::mean(&x2),
                cf_linalg::vector::std_dev(&x1),
                cf_linalg::vector::std_dev(&x2),
            );
        }
        std::fs::create_dir_all(&cfg.out_dir).expect("results dir");
        let path = cfg.out_dir.join("fig10_syn1.csv");
        cf_data::csv::write_csv(&d, &path).expect("write CSV");
        println!("[artifact] {}", path.display());
    }
}

/// Fig. 11 — DiffFair vs ConFair vs MultiModel on the synthetic data.
pub mod fig11 {
    use super::*;
    use cf_datasets::synthgen::syn_drift_scaled;

    /// Methods in the paper's bar order.
    pub const METHODS: [&str; 4] = ["NoIntervention", "MultiModel", "DiffFair", "ConFair"];

    /// Run Syn1–Syn5 with LR (XGB is "not a good fit" per the paper's fn. 4).
    pub fn run(cfg: &ExpConfig) {
        // The Syn generator's paper size is just 11,000 tuples, so run it at
        // a healthier fraction than the big ACS sets.
        let scale = (cfg.scale * 4.0).min(1.0);
        let datasets: Vec<Dataset> = (1..=5)
            .map(|v| syn_drift_scaled(v, scale, cfg.seed))
            .collect();
        let names: Vec<&str> = ["Syn1", "Syn2", "Syn3", "Syn4", "Syn5"].to_vec();
        let spec = runner::GridSpec {
            datasets: &datasets,
            methods: &METHODS,
            learners: &[LearnerKind::Logistic],
            reps: cfg.reps,
            seed: cfg.seed,
        };
        let results = runner::run_grid(&spec);
        runner::print_panel(
            "Fig. 11: DI*, LR models",
            &results,
            &names,
            &METHODS,
            "LR",
            |r| r.di_star,
        );
        runner::print_panel(
            "Fig. 11: AOD*, LR models",
            &results,
            &names,
            &METHODS,
            "LR",
            |r| r.aod_star,
        );
        runner::print_panel(
            "Fig. 11: BalAcc, LR models",
            &results,
            &names,
            &METHODS,
            "LR",
            |r| r.balanced_accuracy,
        );
        cfg.save_json("fig11_synthetic_difffair", &results);
    }
}

/// Fig. 12 — DiffFair vs ConFair on the real-world simulators.
pub mod fig12 {
    use super::*;

    /// The five datasets the paper's Fig. 12 panels show.
    pub const DATASETS: [&str; 5] = ["MEPS", "LSAC", "Credit", "ACSP", "ACSI"];
    /// Methods in the paper's bar order.
    pub const METHODS: [&str; 3] = ["NoIntervention", "DiffFair", "ConFair"];

    /// Run the grid and print the six panels.
    pub fn run(cfg: &ExpConfig) {
        let datasets: Vec<Dataset> = DATASETS
            .iter()
            .map(|n| {
                RealWorldSpec::by_name(n)
                    .expect("known dataset")
                    .generate_scaled(cfg.scale, cfg.seed)
            })
            .collect();
        let spec = runner::GridSpec {
            datasets: &datasets,
            methods: &METHODS,
            learners: &LearnerKind::both(),
            reps: cfg.reps,
            seed: cfg.seed,
        };
        let results = runner::run_grid(&spec);
        for learner in LearnerKind::both() {
            print_learner_panels("Fig. 12", &results, &DATASETS, &METHODS, learner);
        }
        cfg.save_json("fig12_real_difffair", &results);
    }
}

/// Fig. 13 — the Algorithm-3 (density optimisation) ablation.
pub mod fig13 {
    use super::*;

    /// Methods: each strategy with and without the optimisation.
    pub const METHODS: [&str; 5] = [
        "NoIntervention",
        "DiffFair0",
        "DiffFair",
        "ConFair0",
        "ConFair",
    ];

    /// Run the grid and print the six panels.
    pub fn run(cfg: &ExpConfig) {
        let datasets = real_datasets(cfg);
        let spec = runner::GridSpec {
            datasets: &datasets,
            methods: &METHODS,
            learners: &LearnerKind::both(),
            reps: cfg.reps,
            seed: cfg.seed,
        };
        let results = runner::run_grid(&spec);
        for learner in LearnerKind::both() {
            print_learner_panels("Fig. 13", &results, &REAL_DATASETS, &METHODS, learner);
        }
        cfg.save_json("fig13_cc_ablation", &results);
    }
}

/// Fig. 14 — runtime comparison.
pub mod fig14 {
    use super::*;

    /// Methods timed (the Fig. 14 bars).
    pub const METHODS: [&str; 5] = ["KAM", "CAP", "DiffFair", "OMN", "ConFair"];

    /// Run the grid and print mean wall-clock seconds per method.
    pub fn run(cfg: &ExpConfig) {
        let datasets = real_datasets(cfg);
        let spec = runner::GridSpec {
            datasets: &datasets,
            methods: &METHODS,
            learners: &LearnerKind::both(),
            reps: cfg.reps,
            seed: cfg.seed,
        };
        let results = runner::run_grid(&spec);
        for learner in LearnerKind::both() {
            runner::print_panel(
                &format!(
                    "Fig. 14: intervention+training runtime (s), {} models",
                    learner.name()
                ),
                &results,
                &REAL_DATASETS,
                &METHODS,
                learner.name(),
                |r| r.runtime_secs,
            );
        }
        cfg.save_json("fig14_runtime", &results);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_dataset_names_match_spec_order() {
        let specs = RealWorldSpec::all();
        for (name, spec) in REAL_DATASETS.iter().zip(&specs) {
            assert_eq!(*name, spec.name);
        }
    }

    #[test]
    fn fig2_is_pure_printing() {
        fig02::run(&ExpConfig::default());
    }
}
