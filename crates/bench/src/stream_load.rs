//! Shared workload builders for the stream-ingest benchmarks, used by both
//! the criterion bench (`benches/stream_ingest.rs`) and the trajectory
//! binary (`run_stream_bench`) so the two always measure the same workload.

use cf_datasets::stream::{DriftStream, DriftStreamSpec, ShardedDriftStream};
use cf_learners::LearnerKind;
use cf_stream::{
    RetrainPolicy, ShardedEngine, ShardedTuple, StreamConfig, StreamEngine, StreamTuple,
};

/// The benchmark stream never drifts: throughput is measured on the steady
/// state, not on retraining transients.
pub fn stationary_spec() -> DriftStreamSpec {
    DriftStreamSpec {
        drift_onset: u64::MAX,
        ..DriftStreamSpec::default()
    }
}

/// Monitoring-only engine configuration with the given window capacity.
pub fn engine_config(window: usize) -> StreamConfig {
    StreamConfig {
        window,
        retrain: RetrainPolicy::Never,
        ..StreamConfig::default()
    }
}

/// A bootstrapped single-stream engine over the benchmark reference.
pub fn fresh_engine(window: usize) -> StreamEngine {
    let reference = stationary_spec().reference(4_000, 21);
    StreamEngine::from_reference(&reference, LearnerKind::Logistic, 21, engine_config(window))
        .expect("bootstrap")
}

/// A bootstrapped sharded engine over the benchmark reference.
pub fn fresh_sharded_engine(window: usize, shards: usize) -> ShardedEngine {
    let reference = stationary_spec().reference(4_000, 21);
    ShardedEngine::from_reference(
        &reference,
        LearnerKind::Logistic,
        21,
        engine_config(window),
        shards,
    )
    .expect("bootstrap")
}

/// Pregenerate `n_batches` single-stream batches of `batch` tuples each.
pub fn pregenerate(n_batches: usize, batch: usize) -> Vec<Vec<StreamTuple>> {
    let mut stream = DriftStream::new(stationary_spec(), 3);
    (0..n_batches)
        .map(|_| StreamTuple::rows_from_dataset(&stream.next_batch(batch)).expect("numeric"))
        .collect()
}

/// Pregenerate routed mixed-shard batches: `rounds` batches of
/// `per_shard * n_shards` tuples each, round-robin interleaved across
/// shards.
pub fn pregenerate_sharded(
    n_shards: usize,
    rounds: usize,
    per_shard: usize,
) -> Vec<Vec<ShardedTuple>> {
    let mut fleet = ShardedDriftStream::uniform(stationary_spec(), n_shards, 5);
    (0..rounds)
        .map(|_| {
            let per_shard_tuples: Vec<Vec<StreamTuple>> = fleet
                .next_batches(per_shard)
                .iter()
                .map(|d| StreamTuple::rows_from_dataset(d).expect("numeric"))
                .collect();
            let mut routed = Vec::with_capacity(n_shards * per_shard);
            for i in 0..per_shard {
                for (shard, tuples) in per_shard_tuples.iter().enumerate() {
                    routed.push(ShardedTuple {
                        shard: shard as u32,
                        tuple: tuples[i].clone(),
                    });
                }
            }
            routed
        })
        .collect()
}
