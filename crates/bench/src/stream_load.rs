//! Shared workload builders for the stream-ingest benchmarks, used by both
//! the criterion bench (`benches/stream_ingest.rs`) and the trajectory
//! binary (`run_stream_bench`) so the two always measure the same workload.

use cf_datasets::stream::{
    DelayedLabelStream, DriftStream, DriftStreamSpec, LabelDelay, ShardedDriftStream,
};
use cf_learners::LearnerKind;
use cf_linalg::Matrix;
use cf_stream::{
    AsyncConfig, AsyncEngine, FaultKind, FaultPlan, LabelFeedback, RepairConfig, RetrainFaults,
    RetrainPolicy, ShardedEngine, ShardedTuple, StreamConfig, StreamEngine, StreamTuple,
};
use confair_core::confair::{AlphaMode, ConFairConfig};

/// The benchmark stream never drifts: throughput is measured on the steady
/// state, not on retraining transients.
pub fn stationary_spec() -> DriftStreamSpec {
    DriftStreamSpec {
        drift_onset: u64::MAX,
        ..DriftStreamSpec::default()
    }
}

/// The latency workload *does* drift (at `onset`): it exists to measure
/// what the serving path pays when monitoring gets busy — detector churn,
/// floor checks, and on-alert retrains.
pub fn drifting_spec(onset: u64) -> DriftStreamSpec {
    DriftStreamSpec {
        drift_onset: onset,
        ..DriftStreamSpec::default()
    }
}

/// Monitoring-only engine configuration with the given window capacity.
pub fn engine_config(window: usize) -> StreamConfig {
    StreamConfig {
        window,
        retrain: RetrainPolicy::Never,
        ..StreamConfig::default()
    }
}

/// A bootstrapped single-stream engine over the benchmark reference.
pub fn fresh_engine(window: usize) -> StreamEngine {
    let reference = stationary_spec().reference(4_000, 21);
    StreamEngine::from_reference(&reference, LearnerKind::Logistic, 21, engine_config(window))
        .expect("bootstrap")
}

/// A bootstrapped sharded engine over the benchmark reference.
pub fn fresh_sharded_engine(window: usize, shards: usize) -> ShardedEngine {
    let reference = stationary_spec().reference(4_000, 21);
    ShardedEngine::from_reference(
        &reference,
        LearnerKind::Logistic,
        21,
        engine_config(window),
        shards,
    )
    .expect("bootstrap")
}

/// The K-ary throughput workload: the stationary benchmark geometry
/// split over `groups` cells. The minority mass is raised so every cell
/// sees real traffic at K=8 (each non-majority cell carries ≈ 8.6% of
/// the stream), and the arc is kept tight so one global model serves
/// all cells near selection parity — the rows measure counter cost, not
/// fairness churn.
pub fn kary_spec(groups: usize) -> DriftStreamSpec {
    DriftStreamSpec {
        groups,
        minority_fraction: 0.6,
        minority_offset: 0.5,
        ..stationary_spec()
    }
}

/// A bootstrapped engine monitoring `groups` cells over the K-ary
/// benchmark reference. Identical to [`fresh_engine`] except for K and a
/// disabled DI* floor: the worst pair of 28 small cells sits below the
/// EEOC 0.8 on this synthetic geometry, and a row that exists to isolate
/// the per-tuple counter cost (one increment — O(1) in K) should not
/// spend its run logging floor alerts that other rows already measure.
pub fn fresh_kary_engine(window: usize, groups: usize) -> StreamEngine {
    let reference = kary_spec(groups).reference(4_000, 21);
    let config = StreamConfig {
        groups,
        di_floor: 0.0,
        ..engine_config(window)
    };
    StreamEngine::from_reference(&reference, LearnerKind::Logistic, 21, config).expect("bootstrap")
}

/// Pregenerate `n_batches` stationary K-ary batches of `batch` tuples.
pub fn pregenerate_kary(groups: usize, n_batches: usize, batch: usize) -> Vec<Vec<StreamTuple>> {
    pregenerate_from(kary_spec(groups), n_batches, batch)
}

/// Monitoring + on-alert retraining configuration for the latency
/// workload. Fixed-α ConFair keeps each retrain's cost representative
/// (one weighted fit) without the α grid search, so the tail latencies
/// measure the retrain itself, not hyperparameter tuning.
pub fn retraining_config(window: usize) -> StreamConfig {
    StreamConfig {
        window,
        retrain: RetrainPolicy::OnAlert {
            min_window: window / 2,
        },
        confair: ConFairConfig {
            alpha: AlphaMode::Fixed {
                alpha_u: 2.0,
                alpha_w: 1.0,
            },
            ..ConFairConfig::default()
        },
        ..StreamConfig::default()
    }
}

/// A bootstrapped synchronous engine for the drifting latency workload.
pub fn fresh_retraining_engine(window: usize) -> StreamEngine {
    let reference = drifting_spec(u64::MAX).reference(4_000, 21);
    StreamEngine::from_reference(
        &reference,
        LearnerKind::Logistic,
        21,
        retraining_config(window),
    )
    .expect("bootstrap")
}

/// The async twin of [`fresh_retraining_engine`]: same reference, same
/// seed, same stream config — identical decisions, pipelined monitoring.
pub fn fresh_async_engine(window: usize, async_config: AsyncConfig) -> AsyncEngine {
    AsyncEngine::from_engine(fresh_retraining_engine(window), async_config)
}

/// The async twin of [`fresh_engine`]: monitoring only, no retraining —
/// the healthy baseline the degraded-mode robustness row is measured
/// against.
pub fn fresh_monitoring_async_engine(window: usize, async_config: AsyncConfig) -> AsyncEngine {
    AsyncEngine::from_engine(fresh_engine(window), async_config)
}

/// The degraded-mode robustness workload: the same stationary reference
/// and window as [`fresh_engine`], but with a DI* floor the stream can
/// never satisfy (0.99) and every retrain attempt scheduled to fail — so
/// the first repair episode exhausts its zero-backoff budget during
/// warm-up and the engine serves the entire timed region in degraded
/// mode, with further failing episodes recurring at the floor cooldown.
/// Throughput in this regime is compared against
/// [`fresh_monitoring_async_engine`] on identical batches: degraded mode
/// must be a flag, not a slow path.
pub fn fresh_degraded_async_engine(window: usize, async_config: AsyncConfig) -> AsyncEngine {
    let reference = stationary_spec().reference(4_000, 21);
    let config = StreamConfig {
        di_floor: 0.99,
        floor_min_window: 1_024,
        floor_cooldown: 32_768,
        retrain: RetrainPolicy::OnAlert { min_window: 48 },
        repair: RepairConfig {
            max_attempts: 2,
            backoff_base_ms: 0,
            backoff_max_ms: 0,
            ..RepairConfig::default()
        },
        ..engine_config(window)
    };
    let mut engine = StreamEngine::from_reference(&reference, LearnerKind::Logistic, 21, config)
        .expect("bootstrap");
    engine.inject_faults(
        FaultPlan::new().with_retrain(RetrainFaults::at_attempts(
            (0..u64::from(u16::MAX))
                .map(|i| (i, FaultKind::Error))
                .collect(),
        )),
    );
    AsyncEngine::from_engine(engine, async_config)
}

/// The repair-ladder recovery workload: the default binary geometry
/// drifting at tuple 350 in `drift_group`. Each `repair/*` bench row
/// picks the cell whose drift its rung can cure: the minority cell
/// (default) for the nudge and retrain rows, the majority cell (0) for
/// the projection row — a majority drift inflates the advantaged cell's
/// selection rate, which damping nonconforming rows corrects.
pub fn ladder_spec(drift_group: u8) -> DriftStreamSpec {
    DriftStreamSpec {
        drift_onset: 350,
        drift_group,
        ..DriftStreamSpec::default()
    }
}

/// A ladder-enabled engine over the recovery workload's reference. The
/// knobs select which rung closes the episode: a generous `nudge_max`
/// with effectively-infinite patience keeps the repair on tier 1;
/// `nudge_max` 0.0 makes tier 1 impotent (every nudge clamps
/// immediately) so short patience climbs to the projection, and an
/// on-alert retrain policy on top of that reaches tier 3.
pub fn fresh_ladder_engine(
    retrain: RetrainPolicy,
    tier_patience: u32,
    nudge_max: f64,
    di_floor: f64,
    drift_group: u8,
) -> StreamEngine {
    let reference = ladder_spec(drift_group).reference(900, 23);
    let config = StreamConfig {
        window: 4_096,
        di_floor,
        floor_min_window: 256,
        floor_cooldown: 300,
        retrain,
        repair: RepairConfig {
            ladder: true,
            tier_patience,
            nudge_step: 0.25,
            nudge_max,
            recovery_hold: 2,
            ..RepairConfig::default()
        },
        confair: ConFairConfig {
            alpha: AlphaMode::Fixed {
                alpha_u: 2.0,
                alpha_w: 1.0,
            },
            ..ConFairConfig::default()
        },
        ..StreamConfig::default()
    };
    StreamEngine::from_reference(&reference, LearnerKind::Logistic, 23, config).expect("bootstrap")
}

/// Pregenerate `n_batches` batches of `batch` tuples each from `spec`.
pub fn pregenerate_from(
    spec: DriftStreamSpec,
    n_batches: usize,
    batch: usize,
) -> Vec<Vec<StreamTuple>> {
    let mut stream = DriftStream::new(spec, 3);
    (0..n_batches)
        .map(|_| StreamTuple::rows_from_dataset(&stream.next_batch(batch)).expect("numeric"))
        .collect()
}

/// Pregenerate `n_batches` single-stream stationary batches of `batch`
/// tuples each.
pub fn pregenerate(n_batches: usize, batch: usize) -> Vec<Vec<StreamTuple>> {
    pregenerate_from(stationary_spec(), n_batches, batch)
}

/// The delayed-label workload: stationary geometry, labels trailing by
/// `min_delay..=max_delay` tuples with 5% never arriving — the regime the
/// `feedback` join path is built for. Delays deliberately exceed the
/// benchmark window so most joins go through the pending index (the
/// costliest path).
pub fn delayed_spec(min_delay: u64, max_delay: u64) -> DriftStreamSpec {
    DriftStreamSpec {
        label_delay: LabelDelay::Uniform {
            min: min_delay,
            max: max_delay,
        },
        missing_label_rate: 0.05,
        ..stationary_spec()
    }
}

/// Engine configuration for the feedback-join benchmark: monitoring only,
/// with the pending-join index sized for the workload's label lag.
pub fn feedback_engine_config(window: usize, pending: usize) -> StreamConfig {
    StreamConfig {
        pending_labels: pending,
        ..engine_config(window)
    }
}

/// A bootstrapped engine for the feedback-join benchmark.
pub fn fresh_feedback_engine(window: usize, pending: usize) -> StreamEngine {
    let reference = stationary_spec().reference(4_000, 21);
    StreamEngine::from_reference(
        &reference,
        LearnerKind::Logistic,
        21,
        feedback_engine_config(window, pending),
    )
    .expect("bootstrap")
}

/// Pregenerate `n_batches` unlabeled batches of `batch` tuples each plus,
/// per batch, the feedback records that come due by its end (ids assume
/// the batches are ingested in order into one fresh engine).
#[allow(clippy::type_complexity)]
pub fn pregenerate_delayed(
    spec: DriftStreamSpec,
    n_batches: usize,
    batch: usize,
) -> Vec<(Vec<StreamTuple>, Vec<LabelFeedback>)> {
    let mut stream = DelayedLabelStream::new(spec, 3);
    (0..n_batches)
        .map(|_| {
            let (data, due) = stream.next_batch(batch);
            let tuples = StreamTuple::rows_unlabeled_from_dataset(&data).expect("numeric");
            let feedback = due
                .into_iter()
                .map(|(id, label)| LabelFeedback { id, label })
                .collect();
            (tuples, feedback)
        })
        .collect()
}

/// The scoring-kernel workload: a training problem plus an independent
/// scoring block over the same `d`-feature stationary geometry. Shared by
/// the `kernels/` trajectory rows and the criterion `kernels` group so
/// both time the same matrices.
pub fn kernel_problem(
    d: usize,
    train_rows: usize,
    score_rows: usize,
    seed: u64,
) -> (Matrix, Vec<f64>, Matrix) {
    let spec = DriftStreamSpec {
        n_features: d,
        ..stationary_spec()
    };
    let train = spec.reference(train_rows, seed);
    let x = train.numeric_matrix(None);
    let y = train.labels().iter().map(|&l| f64::from(l)).collect();
    let score = spec.reference(score_rows, seed.wrapping_add(0x5eed));
    (x, y, score.numeric_matrix(None))
}

/// The `p`-th percentile (0–100) of an unsorted sample, by
/// nearest-rank on a sorted copy. Returns 0 for an empty sample.
pub fn percentile_us(samples: &[f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let rank = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Pregenerate routed mixed-shard batches: `rounds` batches of
/// `per_shard * n_shards` tuples each, round-robin interleaved across
/// shards.
pub fn pregenerate_sharded(
    n_shards: usize,
    rounds: usize,
    per_shard: usize,
) -> Vec<Vec<ShardedTuple>> {
    let mut fleet = ShardedDriftStream::uniform(stationary_spec(), n_shards, 5);
    (0..rounds)
        .map(|_| {
            let per_shard_tuples: Vec<Vec<StreamTuple>> = fleet
                .next_batches(per_shard)
                .iter()
                .map(|d| StreamTuple::rows_from_dataset(d).expect("numeric"))
                .collect();
            let mut routed = Vec::with_capacity(n_shards * per_shard);
            for i in 0..per_shard {
                for (shard, tuples) in per_shard_tuples.iter().enumerate() {
                    routed.push(ShardedTuple {
                        shard: shard as u32,
                        tuple: tuples[i].clone(),
                    });
                }
            }
            routed
        })
        .collect()
}
