//! Shared experiment configuration, parsed from CLI arguments.

use std::path::PathBuf;

/// Knobs shared by every experiment binary.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpConfig {
    /// Dataset size as a fraction of the paper's row counts.
    pub scale: f64,
    /// Repetitions averaged per result cell (paper: 20).
    pub reps: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Where `<experiment>.json` artifacts are written.
    pub out_dir: PathBuf,
}

impl Default for ExpConfig {
    fn default() -> Self {
        Self {
            scale: 0.04,
            reps: 3,
            seed: 42,
            out_dir: PathBuf::from("results"),
        }
    }
}

impl ExpConfig {
    /// Parse `--scale=`, `--reps=`, `--seed=`, `--out=` from `std::env::args`.
    ///
    /// # Panics
    /// Panics with a usage message on malformed arguments.
    pub fn from_args() -> Self {
        let mut cfg = Self::default();
        for arg in std::env::args().skip(1) {
            if let Some(v) = arg.strip_prefix("--scale=") {
                cfg.scale = v.parse().expect("--scale=<float in (0,1]>");
                assert!(
                    cfg.scale > 0.0 && cfg.scale <= 1.0,
                    "--scale must be in (0,1]"
                );
            } else if let Some(v) = arg.strip_prefix("--reps=") {
                cfg.reps = v.parse().expect("--reps=<positive int>");
                assert!(cfg.reps > 0, "--reps must be positive");
            } else if let Some(v) = arg.strip_prefix("--seed=") {
                cfg.seed = v.parse().expect("--seed=<u64>");
            } else if let Some(v) = arg.strip_prefix("--out=") {
                cfg.out_dir = PathBuf::from(v);
            } else {
                panic!("unknown argument {arg}; expected --scale= --reps= --seed= --out=");
            }
        }
        cfg
    }

    /// Write a serialisable artifact to `<out_dir>/<name>.json`.
    pub fn save_json<T: serde::Serialize>(&self, name: &str, value: &T) {
        std::fs::create_dir_all(&self.out_dir).expect("create results dir");
        let path = self.out_dir.join(format!("{name}.json"));
        let file = std::fs::File::create(&path).expect("create results file");
        serde_json::to_writer_pretty(std::io::BufWriter::new(file), value)
            .expect("serialise results");
        println!("[artifact] {}", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_laptop_sized() {
        let cfg = ExpConfig::default();
        assert!(cfg.scale <= 0.1);
        assert!(cfg.reps >= 1);
    }

    #[test]
    fn save_json_round_trips() {
        let cfg = ExpConfig {
            out_dir: std::env::temp_dir().join("cf_bench_cfg_test"),
            ..ExpConfig::default()
        };
        cfg.save_json("unit", &vec![1, 2, 3]);
        let back: Vec<i32> =
            serde_json::from_str(&std::fs::read_to_string(cfg.out_dir.join("unit.json")).unwrap())
                .unwrap();
        assert_eq!(back, vec![1, 2, 3]);
    }
}
