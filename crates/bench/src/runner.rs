//! The shared experiment runner: method registry, per-cell repetition, and
//! rayon-parallel grids.

use cf_baselines::omn::OmniFairConfig;
use cf_baselines::{Capuchin, KamiranCalders, OmniFair};
use cf_data::Dataset;
use cf_learners::LearnerKind;
use cf_metrics::FairnessReport;
use confair_core::{
    confair::{ConFair, ConFairConfig},
    difffair::DiffFair,
    evaluate_repeated,
    intervention::{Intervention, NoIntervention},
    multimodel::MultiModel,
    Pipeline,
};
use rayon::prelude::*;
use serde::Serialize;

/// Every method name the registry accepts, in the paper's ordering.
pub const METHOD_NAMES: [&str; 9] = [
    "NoIntervention",
    "MultiModel",
    "DiffFair",
    "DiffFair0",
    "ConFair",
    "ConFair0",
    "KAM",
    "OMN",
    "CAP",
];

/// Instantiate a method by its figure label.
///
/// # Panics
/// Panics on an unknown name (the registry is closed).
pub fn make_method(name: &str) -> Box<dyn Intervention> {
    match name {
        "NoIntervention" => Box::new(NoIntervention),
        "MultiModel" => Box::new(MultiModel),
        "DiffFair" => Box::new(DiffFair::paper_default()),
        "DiffFair0" => Box::new(DiffFair::without_density_filter()),
        "ConFair" => Box::new(ConFair::paper_default()),
        "ConFair0" => Box::new(ConFair::without_density_filter()),
        "KAM" => Box::new(KamiranCalders),
        "OMN" => Box::new(OmniFair::paper_default()),
        "CAP" => Box::new(Capuchin::paper_default()),
        other => panic!("unknown method {other}"),
    }
}

/// ConFair calibrated with a *different* learner (the Fig. 7 setting).
pub fn make_confair_cross(calibration: LearnerKind) -> Box<dyn Intervention> {
    Box::new(ConFair::new(ConFairConfig {
        calibration_learner: Some(calibration),
        ..ConFairConfig::default()
    }))
}

/// OMN calibrated with a *different* learner (the Fig. 7 setting).
pub fn make_omn_cross(calibration: LearnerKind) -> Box<dyn Intervention> {
    Box::new(OmniFair::new(OmniFairConfig {
        calibration_learner: Some(calibration),
        ..OmniFairConfig::default()
    }))
}

/// One aggregated grid cell: a (dataset, method, learner) mean over reps.
#[derive(Debug, Clone, Serialize)]
pub struct CellOutcome {
    /// Mean metrics across successful repetitions.
    pub report: FairnessReport,
    /// Std-dev of DI* across repetitions.
    pub di_std: f64,
    /// Std-dev of AOD* across repetitions.
    pub aod_std: f64,
    /// Std-dev of balanced accuracy across repetitions.
    pub balacc_std: f64,
    /// How many repetitions succeeded (the paper's missing-bars cases show
    /// up as `0`, encoded by the whole cell being absent).
    pub reps_ok: usize,
    /// Requested repetitions.
    pub reps_requested: usize,
}

fn std_dev_of(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    (values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / values.len() as f64).sqrt()
}

/// Run one cell: `reps` split seeds, mean + spread. `None` when every
/// repetition failed (the paper's "method could not produce a model" case).
pub fn run_cell(
    data: &Dataset,
    method: &dyn Intervention,
    learner: LearnerKind,
    reps: usize,
    seed: u64,
) -> Option<CellOutcome> {
    let outcomes =
        evaluate_repeated(data, method, learner, Pipeline::paper_default(), seed, reps).ok()?;
    let reports: Vec<FairnessReport> = outcomes.iter().map(|o| o.report.clone()).collect();
    let mean = FairnessReport::mean(&reports);
    let series = |f: fn(&FairnessReport) -> f64| -> Vec<f64> { reports.iter().map(f).collect() };
    Some(CellOutcome {
        di_std: std_dev_of(&series(|r| r.di_star)),
        aod_std: std_dev_of(&series(|r| r.aod_star)),
        balacc_std: std_dev_of(&series(|r| r.balanced_accuracy)),
        reps_ok: reports.len(),
        reps_requested: reps,
        report: mean,
    })
}

/// A grid request: datasets × methods × learners.
pub struct GridSpec<'a> {
    /// Datasets to evaluate (already generated at the desired scale).
    pub datasets: &'a [Dataset],
    /// Method names resolved via [`make_method`].
    pub methods: &'a [&'a str],
    /// Learner families.
    pub learners: &'a [LearnerKind],
    /// Repetitions per cell.
    pub reps: usize,
    /// Base seed.
    pub seed: u64,
}

/// Evaluate every (dataset, method, learner) cell in parallel. Cells where
/// every repetition failed are omitted (missing bars).
pub fn run_grid(spec: &GridSpec<'_>) -> Vec<CellOutcome> {
    let mut cells: Vec<(usize, &str, LearnerKind)> = Vec::new();
    for d in 0..spec.datasets.len() {
        for &m in spec.methods {
            for &l in spec.learners {
                cells.push((d, m, l));
            }
        }
    }
    let mut results: Vec<CellOutcome> = cells
        .par_iter()
        .filter_map(|&(d, m, l)| {
            let method = make_method(m);
            run_cell(&spec.datasets[d], method.as_ref(), l, spec.reps, spec.seed)
        })
        .collect();
    // Deterministic ordering for printing: dataset, then method, then learner.
    results.sort_by(|a, b| {
        (&a.report.dataset, &a.report.method, &a.report.learner).cmp(&(
            &b.report.dataset,
            &b.report.method,
            &b.report.learner,
        ))
    });
    results
}

/// Render a paper-style panel: one row per method, one column per dataset,
/// for the chosen metric.
pub fn print_panel(
    title: &str,
    results: &[CellOutcome],
    datasets: &[&str],
    methods: &[&str],
    learner: &str,
    metric: fn(&FairnessReport) -> f64,
) {
    println!("\n## {title}");
    print!("{:<16}", "method");
    for d in datasets {
        print!(" {d:>8}");
    }
    println!();
    for m in methods {
        print!("{m:<16}");
        for d in datasets {
            let cell = results.iter().find(|c| {
                c.report.dataset == *d && c.report.method == *m && c.report.learner == learner
            });
            match cell {
                Some(c) => {
                    let flag = if c.report.degenerate {
                        "!"
                    } else if c.report.favors_minority {
                        "^"
                    } else {
                        " "
                    };
                    print!(" {:>7.3}{flag}", metric(&c.report));
                }
                None => print!(" {:>8}", "--"),
            }
        }
        println!();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf_datasets::toy::figure1;

    #[test]
    fn registry_builds_every_method() {
        for name in METHOD_NAMES {
            let m = make_method(name);
            assert_eq!(m.name(), name);
        }
    }

    #[test]
    #[should_panic]
    fn unknown_method_panics() {
        let _ = make_method("Nope");
    }

    #[test]
    fn run_cell_aggregates() {
        let d = figure1(90);
        let out = run_cell(&d, &NoIntervention, LearnerKind::Logistic, 2, 90).unwrap();
        assert_eq!(out.reps_ok, 2);
        assert!(out.di_std >= 0.0);
        assert_eq!(out.report.method, "NoIntervention");
    }

    #[test]
    fn grid_runs_all_cells() {
        let datasets = vec![figure1(91)];
        let spec = GridSpec {
            datasets: &datasets,
            methods: &["NoIntervention", "KAM"],
            learners: &[LearnerKind::Logistic],
            reps: 1,
            seed: 91,
        };
        let results = run_grid(&spec);
        assert_eq!(results.len(), 2);
    }
}
