//! # cf-bench
//!
//! The experiment harness: one module (and one binary) per table/figure in
//! the paper's evaluation (§IV). Binaries are thin wrappers over
//! [`figures`]; `run_all` chains every experiment.
//!
//! All experiments accept `--scale=<f>` (dataset size as a fraction of the
//! paper's row counts), `--reps=<n>` (repetitions averaged per cell — the
//! paper uses 20 on a cluster; the default here is laptop-sized), and
//! `--seed=<n>`. Results print as paper-shaped tables and are also written
//! to `results/<experiment>.json` so EXPERIMENTS.md can cite regenerable
//! numbers.

pub mod config;
pub mod figures;
pub mod runner;
pub mod stream_load;

pub use config::ExpConfig;
pub use runner::{make_method, run_grid, CellOutcome, GridSpec, METHOD_NAMES};
