//! The naive **MultiModel** baseline (§II-B): split by the mapping function
//! `g`, train one model per group, and deploy strictly by group membership.
//!
//! This is the strategy DiffFair improves on — it needs (possibly sensitive)
//! group attributes at serving time and cannot serve an individual with the
//! other group's model even when that model conforms better.

use crate::{
    intervention::{Intervention, Predictor},
    CoreError, Result,
};
use cf_data::{encode::labels_as_f64, Dataset, FeatureEncoding, MAJORITY, MINORITY};
use cf_learners::{Learner, LearnerKind};

/// The MultiModel intervention.
#[derive(Debug, Clone, Copy, Default)]
pub struct MultiModel;

/// Fitted per-group models deployed by group membership.
pub struct MultiModelPredictor {
    encoding: FeatureEncoding,
    model_w: Option<Box<dyn Learner>>,
    model_u: Option<Box<dyn Learner>>,
}

impl Predictor for MultiModelPredictor {
    fn predict(&self, data: &Dataset) -> Result<Vec<u8>> {
        let x = self.encoding.transform(data)?;
        let pw = match &self.model_w {
            Some(m) => Some(m.predict(&x)?),
            None => None,
        };
        let pu = match &self.model_u {
            Some(m) => Some(m.predict(&x)?),
            None => None,
        };
        data.groups()
            .iter()
            .enumerate()
            .map(|(i, &g)| {
                let chosen = if g == MAJORITY { &pw } else { &pu };
                let fallback = if g == MAJORITY { &pu } else { &pw };
                chosen
                    .as_ref()
                    .or(fallback.as_ref())
                    .map(|p| p[i])
                    .ok_or_else(|| CoreError::EmptyPartition("no trained group model".into()))
            })
            .collect()
    }

    // `predict_rows` deliberately stays the rejecting trait default: this
    // predictor routes by group membership, which a bare feature matrix
    // cannot carry.
}

impl Intervention for MultiModel {
    fn name(&self) -> String {
        "MultiModel".to_string()
    }

    fn train(
        &self,
        train: &Dataset,
        _validation: &Dataset,
        learner: LearnerKind,
    ) -> Result<Box<dyn Predictor>> {
        if train.is_empty() {
            return Err(CoreError::EmptyPartition("training set".into()));
        }
        let encoding = FeatureEncoding::fit(train);
        let fit_group = |group: u8| -> Result<Option<Box<dyn Learner>>> {
            let idx = train.group_indices(group);
            if idx.is_empty() {
                return Ok(None);
            }
            let subset = train.subset(&idx);
            let x = encoding.transform(&subset)?;
            let y = labels_as_f64(&subset);
            let mut model = learner.build();
            model.fit(&x, &y, subset.weights())?;
            Ok(Some(model))
        };
        let model_w = fit_group(MAJORITY)?;
        let model_u = fit_group(MINORITY)?;
        if model_w.is_none() && model_u.is_none() {
            return Err(CoreError::EmptyPartition("both groups empty".into()));
        }
        Ok(Box::new(MultiModelPredictor {
            encoding,
            model_w,
            model_u,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf_data::split::{split3, SplitRatios};
    use cf_datasets::{synthgen::syn_drift_scaled, toy::figure1};
    use cf_metrics::GroupConfusion;

    #[test]
    fn predict_rows_is_rejected_not_misrouted() {
        // The matrix fast path carries no group column; the group-routed
        // predictor must refuse it rather than score everyone as group 0.
        let d = figure1(6);
        let s = split3(&d, SplitRatios::paper_default(), 6);
        let p = MultiModel
            .train(&s.train, &s.validation, LearnerKind::Logistic)
            .unwrap();
        let x = s.test.numeric_matrix(None);
        assert!(matches!(p.predict_rows(&x), Err(CoreError::Unsupported(_))));
    }

    #[test]
    fn multimodel_beats_single_model_under_severe_drift() {
        let d = syn_drift_scaled(1, 0.1, 11);
        let s = split3(&d, SplitRatios::paper_default(), 11);

        let single = crate::NoIntervention
            .train(&s.train, &s.validation, LearnerKind::Logistic)
            .unwrap();
        let sp = single.predict(&s.test).unwrap();
        let s_gc = GroupConfusion::compute(s.test.labels(), &sp, s.test.groups());

        let multi = MultiModel
            .train(&s.train, &s.validation, LearnerKind::Logistic)
            .unwrap();
        let mp = multi.predict(&s.test).unwrap();
        let m_gc = GroupConfusion::compute(s.test.labels(), &mp, s.test.groups());

        assert!(m_gc.balanced_accuracy() > s_gc.balanced_accuracy() + 0.1);
    }

    #[test]
    fn predictions_follow_group_membership() {
        let d = figure1(40);
        let s = split3(&d, SplitRatios::paper_default(), 40);
        let multi = MultiModel
            .train(&s.train, &s.validation, LearnerKind::Logistic)
            .unwrap();
        let preds = multi.predict(&s.test).unwrap();
        assert_eq!(preds.len(), s.test.len());
        // With the Fig. 1 geometry each group's own model is near-perfect.
        let gc = GroupConfusion::compute(s.test.labels(), &preds, s.test.groups());
        assert!(gc.balanced_accuracy() > 0.9, "{}", gc.balanced_accuracy());
    }

    #[test]
    fn missing_group_falls_back_to_other_model() {
        let d = figure1(41);
        let keep: Vec<usize> = (0..d.len()).filter(|&i| d.groups()[i] == 0).collect();
        let train = d.subset(&keep);
        let s = split3(&d, SplitRatios::paper_default(), 41);
        let multi = MultiModel
            .train(&train, &s.validation, LearnerKind::Logistic)
            .unwrap();
        let preds = multi.predict(&s.test).unwrap();
        assert_eq!(preds.len(), s.test.len());
    }

    #[test]
    fn name_is_multimodel() {
        assert_eq!(MultiModel.name(), "MultiModel");
    }
}
