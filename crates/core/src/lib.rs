//! # confair-core
//!
//! The paper's contribution: two non-invasive fairness interventions built on
//! conformance constraints.
//!
//! * [`confair::ConFair`] — **Algorithm 2**: reweigh the training tuples.
//!   Base weights balance population/label skew (the Kamiran–Calders term of
//!   line 5); tuples *conforming* to their (group, label) cell's conformance
//!   constraints additionally receive `+α` — only the dense core of each
//!   cell is amplified, never the outliers.
//! * [`difffair::DiffFair`] — **Algorithm 1**: train one model per group and,
//!   at serving time, route each tuple to the model whose training-data
//!   constraints it violates least — group membership is never consulted at
//!   deployment.
//! * [`multimodel::MultiModel`] — the naive split-by-`g` baseline DiffFair
//!   improves on.
//! * [`tuning`] — validation-set search for the intervention degree `α`
//!   (monotone in fairness, §IV-A), with optional cross-model calibration
//!   (Fig. 7).
//! * [`pipeline`] — the split → intervene → train → evaluate driver shared
//!   by every experiment.
//!
//! Everything implements the [`Intervention`] / [`Predictor`] traits so the
//! baselines (`cf-baselines`) and the bench harness plug into one runner.

pub mod confair;
pub mod difffair;
pub mod intervention;
pub mod multimodel;
pub mod pipeline;
pub mod tuning;

pub use confair::{AlphaMode, ConFair, ConFairConfig, FairnessTarget};
pub use difffair::{DiffFair, DiffFairConfig};
pub use intervention::{
    predict_rows_via_dataset, Intervention, NoIntervention, Predictor, PredictorState,
    SingleModelPredictor,
};
pub use multimodel::MultiModel;
pub use pipeline::{evaluate, evaluate_repeated, EvalOutcome, Pipeline};
pub use tuning::{tune_alpha, TuneResult};

use cf_data::DataError;
use cf_learners::LearnError;

/// Errors surfaced by interventions and the pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Dataset-layer failure.
    Data(DataError),
    /// Learner-layer failure.
    Learn(LearnError),
    /// A partition the algorithm requires is empty (e.g. no minority
    /// positives in the training split).
    EmptyPartition(String),
    /// The requested serving path is not supported by this predictor
    /// (e.g. the group-blind `predict_rows` fast path on a group-routed
    /// model).
    Unsupported(String),
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::Data(e) => write!(f, "data error: {e}"),
            CoreError::Learn(e) => write!(f, "learner error: {e}"),
            CoreError::EmptyPartition(what) => write!(f, "empty partition: {what}"),
            CoreError::Unsupported(what) => write!(f, "unsupported operation: {what}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<DataError> for CoreError {
    fn from(e: DataError) -> Self {
        CoreError::Data(e)
    }
}

impl From<LearnError> for CoreError {
    fn from(e: LearnError) -> Self {
        CoreError::Learn(e)
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, CoreError>;
