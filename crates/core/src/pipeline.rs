//! The experimental pipeline shared by every figure: split → intervene →
//! train → evaluate, with seeded repetition (§IV "Experimental steps").

use crate::{intervention::Intervention, Result};
use cf_data::{
    split::{split3, split3_stratified, SplitRatios, ThreeWaySplit},
    Dataset,
};
use cf_learners::LearnerKind;
use cf_metrics::{FairnessReport, GroupConfusion};
use std::time::Instant;

/// Split policy for evaluation runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pipeline {
    /// Train/validation fractions (test gets the remainder).
    pub ratios: SplitRatios,
    /// Stratify splits by (group, label) cell — keeps the smallest
    /// minorities populated at reduced dataset scales. The paper's own runs
    /// are i.i.d. (`false`).
    pub stratified: bool,
}

impl Default for Pipeline {
    fn default() -> Self {
        Self {
            ratios: SplitRatios::paper_default(),
            stratified: false,
        }
    }
}

impl Pipeline {
    /// The paper's 70/15/15 i.i.d. protocol.
    pub fn paper_default() -> Self {
        Self::default()
    }

    /// Stratified variant for small-scale runs.
    pub fn stratified() -> Self {
        Self {
            stratified: true,
            ..Self::default()
        }
    }

    /// Produce the three-way split for a given seed.
    pub fn split(&self, data: &Dataset, seed: u64) -> ThreeWaySplit {
        if self.stratified {
            split3_stratified(data, self.ratios, seed)
        } else {
            split3(data, self.ratios, seed)
        }
    }
}

/// Everything one evaluation run produces.
#[derive(Debug, Clone)]
pub struct EvalOutcome {
    /// The serialisable metrics row.
    pub report: FairnessReport,
    /// The raw group confusion (for custom series like Fig. 8's per-group
    /// rates).
    pub confusion: GroupConfusion,
}

/// Run one full evaluation: split `data`, train through the intervention,
/// predict the test split, and score. The recorded runtime covers the
/// intervention plus training (the Fig. 14 quantity), not prediction.
pub fn evaluate(
    data: &Dataset,
    intervention: &dyn Intervention,
    learner: LearnerKind,
    pipeline: Pipeline,
    seed: u64,
) -> Result<EvalOutcome> {
    let split = pipeline.split(data, seed);
    let started = Instant::now();
    let predictor = intervention.train(&split.train, &split.validation, learner)?;
    let runtime_secs = started.elapsed().as_secs_f64();
    let preds = predictor.predict(&split.test)?;
    let confusion = GroupConfusion::compute(split.test.labels(), &preds, split.test.groups());
    let report = FairnessReport::from_confusion(
        data.name(),
        intervention.name(),
        learner.name(),
        &confusion,
        runtime_secs,
    );
    Ok(EvalOutcome { report, confusion })
}

/// Derive the per-repetition seed from `(base_seed, r)` without collisions.
///
/// The affine form used previously — `(base_seed + 1000) * 31 + r` — made
/// nearby pairs share seeds (e.g. `(1, 31)` and `(2, 0)`), silently
/// correlating repetitions across experiments. With `base·φ + r` (φ odd and
/// huge), two pairs can only collide mod 2^64 when their base seeds differ
/// by `(r₁ − r₂)·φ⁻¹` — an astronomical separation for realistic rep counts
/// — and the splitmix64 finaliser is a bijection, so realistic (base, r)
/// pairs always yield distinct, well-scrambled seeds.
pub fn repetition_seed(base_seed: u64, r: u64) -> u64 {
    let mut z = base_seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(r)
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Repeat [`evaluate`] over `reps` different split seeds and return every
/// outcome (callers aggregate with [`FairnessReport::mean`]). A repetition
/// that fails (e.g. a learner diverging under extreme weights — the paper's
/// missing-OMN-bars case) is skipped; an error is returned only if *every*
/// repetition fails.
pub fn evaluate_repeated(
    data: &Dataset,
    intervention: &dyn Intervention,
    learner: LearnerKind,
    pipeline: Pipeline,
    base_seed: u64,
    reps: usize,
) -> Result<Vec<EvalOutcome>> {
    assert!(reps > 0, "need at least one repetition");
    let mut outcomes = Vec::with_capacity(reps);
    let mut last_err = None;
    for r in 0..reps {
        let seed = repetition_seed(base_seed, r as u64);
        match evaluate(data, intervention, learner, pipeline, seed) {
            Ok(o) => outcomes.push(o),
            Err(e) => last_err = Some(e),
        }
    }
    if outcomes.is_empty() {
        Err(last_err.expect("reps > 0 and no outcomes implies an error"))
    } else {
        Ok(outcomes)
    }
}

/// Mean report across outcomes (metadata from the first).
pub fn mean_report(outcomes: &[EvalOutcome]) -> FairnessReport {
    let reports: Vec<FairnessReport> = outcomes.iter().map(|o| o.report.clone()).collect();
    FairnessReport::mean(&reports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ConFair, NoIntervention};
    use cf_datasets::toy::figure1;

    #[test]
    fn evaluate_produces_complete_report() {
        let d = figure1(50);
        let out = evaluate(
            &d,
            &NoIntervention,
            LearnerKind::Logistic,
            Pipeline::paper_default(),
            50,
        )
        .unwrap();
        assert_eq!(out.report.dataset, "Fig1");
        assert_eq!(out.report.method, "NoIntervention");
        assert_eq!(out.report.learner, "LR");
        assert!(out.report.balanced_accuracy > 0.5);
        assert!(out.report.runtime_secs >= 0.0);
    }

    #[test]
    fn repeated_evaluation_varies_with_seed_but_is_reproducible() {
        let d = figure1(51);
        let a = evaluate_repeated(
            &d,
            &NoIntervention,
            LearnerKind::Logistic,
            Pipeline::paper_default(),
            1,
            3,
        )
        .unwrap();
        let b = evaluate_repeated(
            &d,
            &NoIntervention,
            LearnerKind::Logistic,
            Pipeline::paper_default(),
            1,
            3,
        )
        .unwrap();
        assert_eq!(a.len(), 3);
        for (x, y) in a.iter().zip(&b) {
            // Identical up to wall-clock noise.
            let mut xr = x.report.clone();
            let mut yr = y.report.clone();
            xr.runtime_secs = 0.0;
            yr.runtime_secs = 0.0;
            assert_eq!(xr, yr);
        }
    }

    #[test]
    fn mean_report_aggregates() {
        let d = figure1(52);
        let outs = evaluate_repeated(
            &d,
            &NoIntervention,
            LearnerKind::Logistic,
            Pipeline::paper_default(),
            2,
            4,
        )
        .unwrap();
        let mean = mean_report(&outs);
        let lo = outs
            .iter()
            .map(|o| o.report.balanced_accuracy)
            .fold(f64::INFINITY, f64::min);
        let hi = outs
            .iter()
            .map(|o| o.report.balanced_accuracy)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(mean.balanced_accuracy >= lo && mean.balanced_accuracy <= hi);
    }

    #[test]
    fn pipeline_end_to_end_with_confair() {
        let d = figure1(53);
        let out = evaluate(
            &d,
            &ConFair::paper_default(),
            LearnerKind::Logistic,
            Pipeline::paper_default(),
            53,
        )
        .unwrap();
        assert_eq!(out.report.method, "ConFair");
        assert!(out.report.di_star > 0.0);
    }

    #[test]
    fn repetition_seeds_do_not_collide() {
        // The regression that motivated `repetition_seed`: the old affine
        // derivation mapped (1, 31) and (2, 0) to the same seed.
        assert_ne!(repetition_seed(1, 31), repetition_seed(2, 0));
        // Exhaustive check over a realistic experiment envelope.
        let mut seen = std::collections::HashSet::new();
        for base in 0..64u64 {
            for r in 0..64u64 {
                assert!(
                    seen.insert(repetition_seed(base, r)),
                    "seed collision at base={base}, r={r}"
                );
            }
        }
    }

    #[test]
    fn stratified_pipeline_keeps_cells() {
        let d = figure1(54);
        let split = Pipeline::stratified().split(&d, 54);
        for cell in cf_data::CellIndex::binary_cells() {
            assert!(split.train.cell_count(cell) > 0, "cell {cell:?} empty");
        }
    }
}
