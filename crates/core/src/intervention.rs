//! The [`Intervention`] / [`Predictor`] traits every method implements, plus
//! the no-intervention baseline.

use crate::Result;
use cf_data::{encode::labels_as_f64, Column, Dataset, FeatureEncoding};
use cf_learners::{Learner, LearnerKind, ModelState};
use cf_linalg::Matrix;

/// The serialisable state of a checkpointable predictor: the fitted
/// feature encoding plus the fitted model parameters. Produced by
/// [`Predictor::state`], consumed by [`SingleModelPredictor::from_state`];
/// the rebuilt predictor scores bit-identically to the snapshotted one.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct PredictorState {
    encoding: FeatureEncoding,
    model: ModelState,
}

impl PredictorState {
    /// The fitted feature encoding.
    pub fn encoding(&self) -> &FeatureEncoding {
        &self.encoding
    }

    /// The fitted model parameters.
    pub fn model(&self) -> &ModelState {
        &self.model
    }
}

/// A trained model (or model ensemble) ready to serve predictions.
pub trait Predictor: Send {
    /// Hard predictions for every tuple of `data`.
    fn predict(&self, data: &Dataset) -> Result<Vec<u8>>;

    /// Snapshot this predictor's full fitted state for checkpointing, or
    /// `None` when the predictor is not serialisable (the default —
    /// ensemble predictors like DiffFair's router do not checkpoint yet).
    fn state(&self) -> Option<PredictorState> {
        None
    }

    /// Hard predictions straight from a row-major numeric feature matrix
    /// (one row per tuple, one column per attribute in schema order) — the
    /// streaming fast path, which skips [`Dataset`] assembly entirely.
    ///
    /// Only meaningful for predictors trained on all-numeric schemas, and
    /// **opt-in**: the default rejects the call, because a bare matrix
    /// carries no group column and a group-routed predictor inheriting a
    /// permissive default would silently score every row as group 0.
    /// Learner-backed predictors override it to feed their feature
    /// encoding directly; predictors whose serving decision never reads
    /// groups or labels may delegate to [`predict_rows_via_dataset`].
    fn predict_rows(&self, _x: &Matrix) -> Result<Vec<u8>> {
        Err(crate::CoreError::Unsupported(
            "this predictor does not implement the row-matrix fast path; \
             use predict with a Dataset"
                .into(),
        ))
    }

    /// Raw decision margins straight from a row-major numeric feature
    /// matrix: the pre-threshold scores whose sign is [`Predictor::
    /// predict_rows`] (`decision == (margin >= 0.0)` bit for bit for
    /// learner-backed predictors). Opt-in like `predict_rows`, and for
    /// the same reason; serve-time threshold repair needs the boundary
    /// itself, not just its sign, so it can shift per-cell cutoffs.
    fn predict_margin_rows(&self, _x: &Matrix) -> Result<Vec<f64>> {
        Err(crate::CoreError::Unsupported(
            "this predictor does not expose raw decision margins; \
             per-cell threshold repair requires a margin-based model"
                .into(),
        ))
    }
}

/// `Predictor::predict_rows` via the `Dataset` path: materialise a
/// column-major dataset from `x` with *placeholder* labels and groups and
/// call `predict`. Sound only for predictors whose serving decision never
/// reads groups or labels (e.g. DiffFair, which routes by conformance of
/// the features alone) — group-routed predictors must not delegate here.
pub fn predict_rows_via_dataset(predictor: &dyn Predictor, x: &Matrix) -> Result<Vec<u8>> {
    let n = x.rows();
    let names: Vec<String> = (0..x.cols()).map(|j| format!("x{j}")).collect();
    let columns: Vec<Column> = (0..x.cols()).map(|j| Column::Numeric(x.col(j))).collect();
    let data = Dataset::new("predict-rows", names, columns, vec![0; n], vec![0; n])?;
    predictor.predict(&data)
}

/// A fairness intervention: consumes the training/validation splits and a
/// learner family, produces a [`Predictor`].
///
/// The trait deliberately mirrors the paper's framing (Definition 1): the
/// intervention may reweigh or split, but receives the data and the learning
/// algorithm as-is.
pub trait Intervention: Send + Sync {
    /// Name as it appears in the paper's figures (e.g. `"ConFair"`).
    fn name(&self) -> String;

    /// Run the intervention and train.
    fn train(
        &self,
        train: &Dataset,
        validation: &Dataset,
        learner: LearnerKind,
    ) -> Result<Box<dyn Predictor>>;
}

/// A single model plus the feature encoding it was trained with.
pub struct SingleModelPredictor {
    encoding: FeatureEncoding,
    model: Box<dyn Learner>,
}

impl SingleModelPredictor {
    /// Train `learner` on (optionally weighted) `train` data.
    pub fn fit(train: &Dataset, learner: LearnerKind, weights: Option<&[f64]>) -> Result<Self> {
        let (encoding, x) = FeatureEncoding::fit_transform(train);
        let y = labels_as_f64(train);
        let mut model = learner.build();
        model.fit(&x, &y, weights)?;
        Ok(Self { encoding, model })
    }

    /// Probability of the positive class for every tuple.
    pub fn predict_proba(&self, data: &Dataset) -> Result<Vec<f64>> {
        let x = self.encoding.transform(data)?;
        Ok(self.model.predict_proba(&x)?)
    }

    /// Rebuild a predictor from a snapshotted [`PredictorState`]. The
    /// restored predictor's decisions are bit-identical to the original's.
    ///
    /// # Errors
    /// Rejects states whose encoding width disagrees with the model's
    /// feature count (a corrupted or hand-assembled checkpoint).
    pub fn from_state(state: PredictorState) -> Result<Self> {
        let width = state.encoding.width();
        let model_features = match &state.model {
            ModelState::Logistic(m) => m.coefficients().len(),
            ModelState::Gbt(m) => m.n_features(),
        };
        if width != model_features {
            return Err(crate::CoreError::Unsupported(format!(
                "predictor state is inconsistent: encoding width {width}, \
                 model expects {model_features} features"
            )));
        }
        Ok(Self {
            encoding: state.encoding,
            model: state.model.build(),
        })
    }
}

impl Predictor for SingleModelPredictor {
    fn predict(&self, data: &Dataset) -> Result<Vec<u8>> {
        let x = self.encoding.transform(data)?;
        Ok(self.model.predict(&x)?)
    }

    fn state(&self) -> Option<PredictorState> {
        let model = self.model.state()?;
        Some(PredictorState {
            encoding: self.encoding.clone(),
            model,
        })
    }

    fn predict_rows(&self, x: &Matrix) -> Result<Vec<u8>> {
        let encoded = self.encoding.transform_rows(x)?;
        Ok(self.model.predict(&encoded)?)
    }

    fn predict_margin_rows(&self, x: &Matrix) -> Result<Vec<f64>> {
        let encoded = self.encoding.transform_rows(x)?;
        Ok(self.model.predict_margin(&encoded)?)
    }
}

/// The `NO-INTERVENTION` baseline: train on the data exactly as given.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoIntervention;

impl Intervention for NoIntervention {
    fn name(&self) -> String {
        "NoIntervention".to_string()
    }

    fn train(
        &self,
        train: &Dataset,
        _validation: &Dataset,
        learner: LearnerKind,
    ) -> Result<Box<dyn Predictor>> {
        // Existing weights (if a caller attached any) are honoured: the
        // baseline trains on the dataset exactly as handed over.
        let predictor = SingleModelPredictor::fit(train, learner, train.weights())?;
        Ok(Box::new(predictor))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf_data::split::{split3, SplitRatios};
    use cf_datasets::toy::figure1;

    #[test]
    fn no_intervention_trains_and_predicts() {
        let data = figure1(1);
        let s = split3(&data, SplitRatios::paper_default(), 1);
        let p = NoIntervention
            .train(&s.train, &s.validation, LearnerKind::Logistic)
            .unwrap();
        let preds = p.predict(&s.test).unwrap();
        assert_eq!(preds.len(), s.test.len());
        assert!(preds.iter().all(|&v| v <= 1));
    }

    #[test]
    fn no_intervention_is_accurate_on_majority() {
        // The Fig. 1 geometry: a single model fits the majority well.
        let data = figure1(2);
        let s = split3(&data, SplitRatios::paper_default(), 2);
        let p = NoIntervention
            .train(&s.train, &s.validation, LearnerKind::Logistic)
            .unwrap();
        let preds = p.predict(&s.test).unwrap();
        let mut hits = 0;
        let mut total = 0;
        for ((&p, &g), &y) in preds.iter().zip(s.test.groups()).zip(s.test.labels()) {
            if g == 0 {
                total += 1;
                if p == y {
                    hits += 1;
                }
            }
        }
        assert!(hits as f64 / total as f64 > 0.9, "{hits}/{total}");
    }

    #[test]
    fn single_model_predictor_proba_in_range() {
        let data = figure1(3);
        let s = split3(&data, SplitRatios::paper_default(), 3);
        let p = SingleModelPredictor::fit(&s.train, LearnerKind::Gbt, None).unwrap();
        for prob in p.predict_proba(&s.test).unwrap() {
            assert!((0.0..=1.0).contains(&prob));
        }
    }

    #[test]
    fn name_matches_paper() {
        assert_eq!(NoIntervention.name(), "NoIntervention");
    }

    #[test]
    fn predict_rows_matches_dataset_path() {
        // The Fig. 1 toy data is all-numeric, so the learner-backed
        // override and the opt-in Dataset-wrapping helper must both agree
        // with plain `predict` exactly.
        let data = figure1(4);
        let s = split3(&data, SplitRatios::paper_default(), 4);
        let p = NoIntervention
            .train(&s.train, &s.validation, LearnerKind::Logistic)
            .unwrap();
        let via_dataset = p.predict(&s.test).unwrap();
        let x = s.test.numeric_matrix(None);
        let via_rows = p.predict_rows(&x).unwrap();
        assert_eq!(via_rows, via_dataset);
        assert_eq!(predict_rows_via_dataset(&*p, &x).unwrap(), via_dataset);

        // A predictor that does not opt in is rejected, never misrouted.
        struct Wrap(Box<dyn Predictor>);
        impl Predictor for Wrap {
            fn predict(&self, data: &Dataset) -> Result<Vec<u8>> {
                self.0.predict(data)
            }
        }
        let wrapped = Wrap(p);
        assert!(matches!(
            wrapped.predict_rows(&x),
            Err(crate::CoreError::Unsupported(_))
        ));
    }
}
