//! **Algorithm 1 — DiffFair**: model splitting guided by conformance.
//!
//! Training: split the training data by group, learn one model per group,
//! and profile each (group, label) cell with conformance constraints
//! (optionally density-filtered, §III-C). Serving (the `PREDICT` procedure):
//! for each tuple compute `v_w = min_{Φ∈C_w} ⟦Φ⟧(t)` and
//! `v_u = min_{Φ∈C_u} ⟦Φ⟧(t)`, then answer with the model whose constraints
//! the tuple violates least — the mapping function `g` is *never consulted at
//! deployment*, which is what distinguishes DiffFair from [`crate::MultiModel`].

use crate::{
    intervention::{Intervention, Predictor},
    CoreError, Result,
};
use cf_conformance::{learn_constraints, ConstraintFamily, LearnOptions};
use cf_data::{encode::labels_as_f64, CellIndex, Dataset, FeatureEncoding, MAJORITY, MINORITY};
use cf_density::{density_filter, FilterConfig};
use cf_learners::{Learner, LearnerKind};

/// Configuration for [`DiffFair`].
#[derive(Debug, Clone, PartialEq)]
pub struct DiffFairConfig {
    /// Algorithm-3 density filtering before constraint derivation;
    /// `None` reproduces the paper's DiffFair0 ablation variant.
    pub density_filter: Option<FilterConfig>,
    /// Constraint-discovery options.
    pub learn_opts: LearnOptions,
}

impl Default for DiffFairConfig {
    fn default() -> Self {
        Self {
            density_filter: Some(FilterConfig::paper_default()),
            learn_opts: LearnOptions::paper_default(),
        }
    }
}

/// The DiffFair intervention.
#[derive(Debug, Clone, Default)]
pub struct DiffFair {
    /// Behavioural configuration.
    pub config: DiffFairConfig,
}

impl DiffFair {
    /// DiffFair with the paper's defaults (Algorithm-3 filtering on).
    pub fn paper_default() -> Self {
        Self::default()
    }

    /// The DiffFair0 ablation: constraints derived without density filtering.
    pub fn without_density_filter() -> Self {
        Self {
            config: DiffFairConfig {
                density_filter: None,
                ..DiffFairConfig::default()
            },
        }
    }
}

/// The fitted pair of group models plus their constraint families.
pub struct DiffFairPredictor {
    encoding: FeatureEncoding,
    model_w: Option<Box<dyn Learner>>,
    model_u: Option<Box<dyn Learner>>,
    cc_w: ConstraintFamily,
    cc_u: ConstraintFamily,
}

impl DiffFairPredictor {
    /// Which group's model serves each tuple (0 = majority's, 1 =
    /// minority's) — the `PREDICT` routing decision, exposed for analysis.
    pub fn route(&self, data: &Dataset) -> Vec<u8> {
        let numeric = data.numeric_matrix(None);
        numeric
            .iter_rows()
            .map(|row| {
                let vw = self.cc_w.min_violation(row);
                let vu = self.cc_u.min_violation(row);
                // Algorithm 1 line 17: strictly-less favours the majority
                // model on ties, matching the pseudo-code.
                if vw < vu {
                    MAJORITY
                } else {
                    MINORITY
                }
            })
            .collect()
    }
}

impl Predictor for DiffFairPredictor {
    fn predict_rows(&self, x: &cf_linalg::Matrix) -> Result<Vec<u8>> {
        // Sound to opt in: `route` reads only the feature values (min
        // conformance violation), never the group or label columns.
        crate::intervention::predict_rows_via_dataset(self, x)
    }

    fn predict(&self, data: &Dataset) -> Result<Vec<u8>> {
        let routes = self.route(data);
        let x = self.encoding.transform(data)?;
        // Predict with both models once, then gather — cheaper than
        // per-tuple dispatch and identical in outcome.
        let pw = match &self.model_w {
            Some(m) => Some(m.predict(&x)?),
            None => None,
        };
        let pu = match &self.model_u {
            Some(m) => Some(m.predict(&x)?),
            None => None,
        };
        routes
            .iter()
            .enumerate()
            .map(|(i, &r)| {
                let chosen = if r == MAJORITY { &pw } else { &pu };
                let fallback = if r == MAJORITY { &pu } else { &pw };
                chosen
                    .as_ref()
                    .or(fallback.as_ref())
                    .map(|p| p[i])
                    .ok_or_else(|| CoreError::EmptyPartition("no trained group model".into()))
            })
            .collect()
    }
}

/// Train a model on one group's tuples; `None` when the group is absent.
fn train_group_model(
    train: &Dataset,
    encoding: &FeatureEncoding,
    group: u8,
    learner: LearnerKind,
) -> Result<Option<Box<dyn Learner>>> {
    let idx = train.group_indices(group);
    if idx.is_empty() {
        return Ok(None);
    }
    let subset = train.subset(&idx);
    let x = encoding.transform(&subset)?;
    let y = labels_as_f64(&subset);
    let mut model = learner.build();
    model.fit(&x, &y, subset.weights())?;
    Ok(Some(model))
}

impl Intervention for DiffFair {
    fn name(&self) -> String {
        if self.config.density_filter.is_none() {
            "DiffFair0".to_string()
        } else {
            "DiffFair".to_string()
        }
    }

    fn train(
        &self,
        train: &Dataset,
        _validation: &Dataset,
        learner: LearnerKind,
    ) -> Result<Box<dyn Predictor>> {
        if train.is_empty() {
            return Err(CoreError::EmptyPartition("training set".into()));
        }
        // One shared encoding keeps both models in the same feature space.
        let encoding = FeatureEncoding::fit(train);

        // ---- lines 4–8: constraints per (group, label) cell ----
        let filtered: Option<Vec<(CellIndex, Vec<usize>)>> = self
            .config
            .density_filter
            .map(|cfg| density_filter(train, cfg));
        let mut cc_w = ConstraintFamily::new();
        let mut cc_u = ConstraintFamily::new();
        for cell in CellIndex::binary_cells() {
            let rows: Vec<usize> = match &filtered {
                Some(cells) => cells
                    .iter()
                    .find(|(c, _)| *c == cell)
                    .map(|(_, idx)| idx.clone())
                    .unwrap_or_default(),
                None => train.cell_indices(cell),
            };
            if rows.is_empty() {
                continue;
            }
            let x = train.numeric_matrix(Some(&rows));
            let mut constraints = learn_constraints(&x, &self.config.learn_opts);
            // Bounds from the dense core; violation scale from the whole
            // cell, so routing stays discriminative away from the core.
            if filtered.is_some() {
                let full = train.cell_indices(cell);
                constraints.recompute_stds(&train.numeric_matrix(Some(&full)));
            }
            if cell.group == MAJORITY {
                cc_w.push(constraints);
            } else {
                cc_u.push(constraints);
            }
        }

        // ---- line 9: group-dependent models ----
        let model_w = train_group_model(train, &encoding, MAJORITY, learner)?;
        let model_u = train_group_model(train, &encoding, MINORITY, learner)?;
        if model_w.is_none() && model_u.is_none() {
            return Err(CoreError::EmptyPartition("both groups empty".into()));
        }

        Ok(Box::new(DiffFairPredictor {
            encoding,
            model_w,
            model_u,
            cc_w,
            cc_u,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf_data::split::{split3, SplitRatios};
    use cf_datasets::{synthgen::syn_drift_scaled, toy::figure1};
    use cf_metrics::GroupConfusion;

    #[test]
    fn predict_rows_matches_dataset_path() {
        // DiffFair routes by feature conformance alone, so the opted-in
        // matrix fast path must reproduce the Dataset path exactly.
        let d = figure1(31);
        let s = split3(&d, SplitRatios::paper_default(), 31);
        let p = DiffFair::paper_default()
            .train(&s.train, &s.validation, LearnerKind::Logistic)
            .unwrap();
        let via_dataset = p.predict(&s.test).unwrap();
        let via_rows = p.predict_rows(&s.test.numeric_matrix(None)).unwrap();
        assert_eq!(via_rows, via_dataset);
    }

    #[test]
    fn difffair_routes_most_tuples_to_their_group() {
        let d = figure1(30);
        let s = split3(&d, SplitRatios::paper_default(), 30);
        let trained = DiffFair::paper_default()
            .train(&s.train, &s.validation, LearnerKind::Logistic)
            .unwrap();
        // Downcast through route(): rebuild the predictor to inspect routing.
        let predictor = DiffFair::paper_default()
            .train(&s.train, &s.validation, LearnerKind::Logistic)
            .unwrap();
        let _ = predictor;
        let preds = trained.predict(&s.test).unwrap();
        assert_eq!(preds.len(), s.test.len());
    }

    #[test]
    fn routing_prefers_conforming_group() {
        let d = figure1(31);
        let s = split3(&d, SplitRatios::paper_default(), 31);
        let diff = DiffFair::paper_default();
        // Train directly to get the concrete predictor type.
        let encoding = FeatureEncoding::fit(&s.train);
        let _ = encoding;
        let boxed = diff
            .train(&s.train, &s.validation, LearnerKind::Logistic)
            .unwrap();
        let _ = boxed;
        // Use the public-route path: rebuild a concrete predictor via train
        // and the trait, then check against group labels through behaviour —
        // the Fig. 1 geometry puts the groups in disjoint regions, so routing
        // should match the true groups for the vast majority of tuples.
        let concrete = {
            // Re-run the training steps to obtain DiffFairPredictor directly.
            let filtered = density_filter(&s.train, FilterConfig::paper_default());
            let mut cc_w = ConstraintFamily::new();
            let mut cc_u = ConstraintFamily::new();
            for (cell, rows) in &filtered {
                if rows.is_empty() {
                    continue;
                }
                let x = s.train.numeric_matrix(Some(rows));
                let cs = learn_constraints(&x, &LearnOptions::default());
                if cell.group == MAJORITY {
                    cc_w.push(cs);
                } else {
                    cc_u.push(cs);
                }
            }
            let encoding = FeatureEncoding::fit(&s.train);
            let model_w =
                train_group_model(&s.train, &encoding, MAJORITY, LearnerKind::Logistic).unwrap();
            let model_u =
                train_group_model(&s.train, &encoding, MINORITY, LearnerKind::Logistic).unwrap();
            DiffFairPredictor {
                encoding,
                model_w,
                model_u,
                cc_w,
                cc_u,
            }
        };
        let routes = concrete.route(&s.test);
        let agree = routes
            .iter()
            .zip(s.test.groups())
            .filter(|(a, b)| a == b)
            .count();
        assert!(
            agree as f64 / routes.len() as f64 > 0.8,
            "routing should mostly follow the drift structure: {agree}/{}",
            routes.len()
        );
    }

    #[test]
    fn difffair_beats_single_model_under_severe_drift() {
        // Syn1: label directions fully opposed — the Fig. 11 scenario. The
        // paper's claim there: DiffFair produces *stronger fairness* than a
        // single model can, with an accuracy impact that "can be unavoidable
        // in some cases, but the models remain reasonable".
        let d = syn_drift_scaled(1, 0.1, 7);
        let s = split3(&d, SplitRatios::paper_default(), 7);

        let single = crate::NoIntervention
            .train(&s.train, &s.validation, LearnerKind::Logistic)
            .unwrap();
        let sp = single.predict(&s.test).unwrap();
        let s_gc = GroupConfusion::compute(s.test.labels(), &sp, s.test.groups());

        let diff = DiffFair::paper_default()
            .train(&s.train, &s.validation, LearnerKind::Logistic)
            .unwrap();
        let dp = diff.predict(&s.test).unwrap();
        let d_gc = GroupConfusion::compute(s.test.labels(), &dp, s.test.groups());

        // A single model cannot serve Syn1's opposed minority: its minority
        // balanced accuracy sits near chance (0.5) or below. DiffFair's
        // routed group models recover it. (AOD* alone can be blind here —
        // a coin-flipping minority has symmetric errors that cancel.)
        let single_u = s_gc.minority.balanced_accuracy();
        let diff_u = d_gc.minority.balanced_accuracy();
        assert!(
            diff_u > single_u + 0.2,
            "DiffFair should recover the minority: {single_u} vs {diff_u}"
        );
        assert!(
            d_gc.balanced_accuracy() > s_gc.balanced_accuracy() + 0.05,
            "and improve overall accuracy: {} vs {}",
            s_gc.balanced_accuracy(),
            d_gc.balanced_accuracy()
        );
    }

    #[test]
    fn name_reflects_ablation() {
        assert_eq!(DiffFair::paper_default().name(), "DiffFair");
        assert_eq!(DiffFair::without_density_filter().name(), "DiffFair0");
    }

    #[test]
    fn single_group_training_falls_back() {
        let d = figure1(33);
        // Keep only the majority group in training.
        let keep: Vec<usize> = (0..d.len()).filter(|&i| d.groups()[i] == 0).collect();
        let train = d.subset(&keep);
        let s = split3(&d, SplitRatios::paper_default(), 33);
        let p = DiffFair::paper_default()
            .train(&train, &s.validation, LearnerKind::Logistic)
            .unwrap();
        // Prediction must still work (fallback to the only model).
        let preds = p.predict(&s.test).unwrap();
        assert_eq!(preds.len(), s.test.len());
    }

    #[test]
    fn empty_training_errors() {
        let d = figure1(1).subset(&[]);
        let s = split3(&figure1(1), SplitRatios::paper_default(), 1);
        assert!(DiffFair::paper_default()
            .train(&d, &s.validation, LearnerKind::Logistic)
            .is_err());
    }
}
