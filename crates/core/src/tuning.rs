//! Validation-set search for ConFair's intervention degree `α`.
//!
//! Because ConFair only boosts *conforming* tuples, the achieved fairness is
//! (empirically) monotone in `α` (§IV-A, Figs. 8–9) — so a coarse ascending
//! scan with early stopping finds the optimum cheaply. Calibration may use a
//! different learner from the deployed one (the Fig. 7 setting); robustness
//! to that mismatch is one of the paper's headline claims.

use crate::{
    confair::{FairnessTarget, WeightProfile},
    intervention::{Predictor, SingleModelPredictor},
    Result,
};
use cf_data::Dataset;
use cf_learners::LearnerKind;
use cf_metrics::GroupConfusion;

/// Outcome of the α search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TuneResult {
    /// Chosen minority-cell degree.
    pub alpha_u: f64,
    /// Chosen majority-cell degree (`α_u / 2` for DI, 0 for EqOdds targets).
    pub alpha_w: f64,
    /// Validation fairness gap at the chosen degree (lower is fairer).
    pub gap: f64,
    /// Validation balanced accuracy at the chosen degree.
    pub balanced_accuracy: f64,
    /// How many models the search trained (the Fig. 14 runtime driver).
    pub models_trained: usize,
}

/// The fairness gap the search minimises, per target.
pub(crate) fn fairness_gap(target: FairnessTarget, gc: &GroupConfusion) -> f64 {
    match target {
        FairnessTarget::DisparateImpact => 1.0 - gc.di_star(),
        FairnessTarget::EqOddsFnr => gc.eq_odds_fnr_gap(),
        FairnessTarget::EqOddsFpr => gc.eq_odds_fpr_gap(),
    }
}

/// `α_w` as a function of `α_u`, per §IV "Algorithm parameters".
pub(crate) fn derived_alpha_w(target: FairnessTarget, alpha_u: f64) -> f64 {
    match target {
        FairnessTarget::DisparateImpact => alpha_u / 2.0,
        FairnessTarget::EqOddsFnr | FairnessTarget::EqOddsFpr => 0.0,
    }
}

/// Scan the grid of `α_u` candidates, training one model per candidate and
/// scoring the fairness gap on the validation split.
///
/// Selection: smallest gap; ties broken by higher balanced accuracy.
/// Degenerate models (single-class output) are admissible only if nothing
/// else is — ConFair prefers keeping the model useful. Early exit once the
/// gap has worsened on two consecutive candidates after some improvement
/// (exploiting the monotone response).
pub fn tune_alpha(
    profile: &WeightProfile,
    train: &Dataset,
    validation: &Dataset,
    learner: LearnerKind,
    target: FairnessTarget,
    grid: &[f64],
) -> Result<TuneResult> {
    assert!(!grid.is_empty(), "alpha grid cannot be empty");
    let mut best: Option<TuneResult> = None;
    let mut best_is_degenerate = true;
    let mut worsened_streak = 0usize;
    let mut models_trained = 0usize;

    for &alpha_u in grid {
        let alpha_w = derived_alpha_w(target, alpha_u);
        let weights = profile.weights(alpha_u, alpha_w);
        let predictor = SingleModelPredictor::fit(train, learner, Some(&weights))?;
        models_trained += 1;
        let preds = predictor.predict(validation)?;
        let gc = GroupConfusion::compute(validation.labels(), &preds, validation.groups());
        let gap = fairness_gap(target, &gc);
        let candidate = TuneResult {
            alpha_u,
            alpha_w,
            gap,
            balanced_accuracy: gc.balanced_accuracy(),
            models_trained,
        };
        let degenerate = gc.is_degenerate();

        let better = match &best {
            None => true,
            Some(b) => {
                if degenerate != best_is_degenerate {
                    // Non-degenerate beats degenerate outright.
                    !degenerate
                } else if (candidate.gap - b.gap).abs() < 1e-9 {
                    candidate.balanced_accuracy > b.balanced_accuracy
                } else {
                    candidate.gap < b.gap
                }
            }
        };
        if better {
            best = Some(candidate);
            best_is_degenerate = degenerate;
            worsened_streak = 0;
        } else {
            // Count only *clear* worsening toward the early stop: the
            // response is monotone up to split noise, and small-α candidates
            // can jitter without meaning the optimum has been crossed.
            if best.as_ref().is_some_and(|b| candidate.gap > b.gap + 0.03) {
                worsened_streak += 1;
            }
            if worsened_streak >= 3 {
                break;
            }
        }
    }

    let mut result = best.expect("grid is non-empty");
    result.models_trained = models_trained;
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::confair::{build_profile, FairnessTarget};
    use cf_conformance::LearnOptions;
    use cf_data::split::{split3, SplitRatios};
    use cf_datasets::toy::figure1;
    use cf_density::FilterConfig;

    fn setup() -> (Dataset, Dataset, WeightProfile) {
        // A split on which the drifted minority demonstrably needs a boost
        // (validated by `tuning_beats_zero_alpha`); most Fig. 1 splits do,
        // but not all, so the seed is pinned.
        let d = figure1(23);
        let s = split3(&d, SplitRatios::paper_default(), 23);
        let profile = build_profile(
            &s.train,
            FairnessTarget::DisparateImpact,
            Some(FilterConfig::paper_default()),
            &LearnOptions::default(),
        )
        .unwrap();
        (s.train, s.validation, profile)
    }

    #[test]
    fn tuning_beats_zero_alpha() {
        let (train, val, profile) = setup();
        let grid = crate::confair::default_alpha_grid();
        let result = tune_alpha(
            &profile,
            &train,
            &val,
            LearnerKind::Logistic,
            FairnessTarget::DisparateImpact,
            &grid,
        )
        .unwrap();

        // Gap at the chosen alpha must be no worse than at alpha = 0.
        let zero = tune_alpha(
            &profile,
            &train,
            &val,
            LearnerKind::Logistic,
            FairnessTarget::DisparateImpact,
            &[0.0],
        )
        .unwrap();
        assert!(result.gap <= zero.gap + 1e-9);
        assert!(result.alpha_u > 0.0, "toy data needs a positive boost");
    }

    #[test]
    fn derived_alpha_w_per_target() {
        assert_eq!(derived_alpha_w(FairnessTarget::DisparateImpact, 4.0), 2.0);
        assert_eq!(derived_alpha_w(FairnessTarget::EqOddsFnr, 4.0), 0.0);
        assert_eq!(derived_alpha_w(FairnessTarget::EqOddsFpr, 4.0), 0.0);
    }

    #[test]
    fn early_stop_limits_models_trained() {
        let (train, val, profile) = setup();
        // A long grid: early stopping should usually cut it short; at
        // minimum the search must report how many models it trained.
        let grid: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let result = tune_alpha(
            &profile,
            &train,
            &val,
            LearnerKind::Logistic,
            FairnessTarget::DisparateImpact,
            &grid,
        )
        .unwrap();
        assert!(result.models_trained <= grid.len());
        assert!(result.models_trained >= 1);
    }

    #[test]
    fn singleton_grid_returns_it() {
        let (train, val, profile) = setup();
        let result = tune_alpha(
            &profile,
            &train,
            &val,
            LearnerKind::Logistic,
            FairnessTarget::DisparateImpact,
            &[1.5],
        )
        .unwrap();
        assert_eq!(result.alpha_u, 1.5);
        assert_eq!(result.alpha_w, 0.75);
    }

    #[test]
    #[should_panic]
    fn empty_grid_panics() {
        let (train, val, profile) = setup();
        let _ = tune_alpha(
            &profile,
            &train,
            &val,
            LearnerKind::Logistic,
            FairnessTarget::DisparateImpact,
            &[],
        );
    }
}
