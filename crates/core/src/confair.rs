//! **Algorithm 2 — ConFair**: conformance-driven reweighing.
//!
//! The weight of a tuple `t` in cell (group `g`, label `c`) is
//!
//! ```text
//! S(t) = P(Y=c) · |D_g| / |D_{g,c}|          (skew balancing, line 5)
//!      + α_cell  if ⟦Φ_{g,c}⟧(t) = 0         (conformance boost, lines 8–11)
//! ```
//!
//! The first term is exactly the Kamiran–Calders balancing weight; the
//! second is the paper's novelty — only tuples that *conform* to the densest
//! region of their own cell are amplified, so outliers and noise are never
//! boosted. Which cells receive `α` depends on the fairness target
//! ([`FairnessTarget`]), mirroring §III-B's discussion of Equalized Odds.

use crate::{
    intervention::{Intervention, Predictor, SingleModelPredictor},
    tuning, CoreError, Result,
};
use cf_conformance::{learn_constraints, ConstraintSet, LearnOptions};
use cf_data::{CellIndex, Dataset, MAJORITY, MINORITY};
use cf_density::{density_filter, FilterConfig};
use cf_learners::LearnerKind;

/// A tuple conforms when its violation is numerically zero.
const CONFORMANCE_EPS: f64 = 1e-12;

/// Which fairness measure the `α` boosts optimise (§III-B, Fig. 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FairnessTarget {
    /// Disparate impact by selection rate: boost minority-positive
    /// conforming tuples by `α_u` and majority-negative by `α_w`.
    #[default]
    DisparateImpact,
    /// Equalized Odds by FNR: boost minority-positive conforming tuples only.
    EqOddsFnr,
    /// Equalized Odds by FPR: boost minority-negative conforming tuples only.
    EqOddsFpr,
}

impl FairnessTarget {
    /// The (group, label) cells receiving `α_u` and `α_w` respectively.
    /// `None` for the second slot means the target uses only `α_u`.
    pub fn boosted_cells(self) -> (CellIndex, Option<CellIndex>) {
        match self {
            FairnessTarget::DisparateImpact => (
                CellIndex {
                    group: MINORITY,
                    label: 1,
                },
                Some(CellIndex {
                    group: MAJORITY,
                    label: 0,
                }),
            ),
            FairnessTarget::EqOddsFnr => (
                CellIndex {
                    group: MINORITY,
                    label: 1,
                },
                None,
            ),
            FairnessTarget::EqOddsFpr => (
                CellIndex {
                    group: MINORITY,
                    label: 0,
                },
                None,
            ),
        }
    }

    /// Short label used in experiment output.
    pub fn label(self) -> &'static str {
        match self {
            FairnessTarget::DisparateImpact => "DI/SR",
            FairnessTarget::EqOddsFnr => "EqOdds-FNR",
            FairnessTarget::EqOddsFpr => "EqOdds-FPR",
        }
    }
}

/// How the intervention degree is chosen.
#[derive(Debug, Clone, PartialEq)]
pub enum AlphaMode {
    /// User-supplied degrees — the "flexible intervention" path, which also
    /// removes the retraining cost from the runtime (§IV-D).
    Fixed {
        /// Boost for the minority target cell.
        alpha_u: f64,
        /// Boost for the majority target cell (ignored by EqOdds targets).
        alpha_w: f64,
    },
    /// Validation-set search over a grid of `α_u` values, with
    /// `α_w = α_u / 2` for the DI target (§IV "Algorithm parameters").
    Auto {
        /// Candidate `α_u` values, scanned in order.
        grid: Vec<f64>,
    },
}

impl Default for AlphaMode {
    fn default() -> Self {
        AlphaMode::Auto {
            grid: default_alpha_grid(),
        }
    }
}

// Manual serde impls for the two enums (the derive shim covers only plain
// structs): `FairnessTarget` as its paper label, `AlphaMode` as a
// single-variant-keyed object.
impl serde::Serialize for FairnessTarget {
    fn to_value(&self) -> serde::Value {
        serde::Value::String(self.label().into())
    }
}

impl serde::Deserialize for FairnessTarget {
    fn from_value(v: &serde::Value) -> std::result::Result<Self, serde::Error> {
        match v.as_str() {
            Some("DI/SR") => Ok(FairnessTarget::DisparateImpact),
            Some("EqOdds-FNR") => Ok(FairnessTarget::EqOddsFnr),
            Some("EqOdds-FPR") => Ok(FairnessTarget::EqOddsFpr),
            _ => Err(serde::Error::msg("unknown fairness target")),
        }
    }
}

impl serde::Serialize for AlphaMode {
    fn to_value(&self) -> serde::Value {
        match self {
            AlphaMode::Fixed { alpha_u, alpha_w } => serde::Value::Object(vec![(
                "fixed".into(),
                serde::Value::Object(vec![
                    ("alpha_u".into(), alpha_u.to_value()),
                    ("alpha_w".into(), alpha_w.to_value()),
                ]),
            )]),
            AlphaMode::Auto { grid } => {
                serde::Value::Object(vec![("auto".into(), grid.to_value())])
            }
        }
    }
}

impl serde::Deserialize for AlphaMode {
    fn from_value(v: &serde::Value) -> std::result::Result<Self, serde::Error> {
        if let Some(fixed) = v.get("fixed") {
            return Ok(AlphaMode::Fixed {
                alpha_u: serde::Deserialize::from_value(fixed.get_or_err("alpha_u")?)?,
                alpha_w: serde::Deserialize::from_value(fixed.get_or_err("alpha_w")?)?,
            });
        }
        if let Some(auto) = v.get("auto") {
            return Ok(AlphaMode::Auto {
                grid: serde::Deserialize::from_value(auto)?,
            });
        }
        Err(serde::Error::msg("unknown alpha mode"))
    }
}

/// The default search grid (geometric, plus zero). The boost is *additive*
/// per conforming tuple, and only ~20% of a cell conforms after Algorithm-3
/// filtering, so large α values are needed to move the loss balance on
/// realistically-sized datasets; early stopping keeps the scan cheap.
pub fn default_alpha_grid() -> Vec<f64> {
    vec![0.0, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0]
}

/// Configuration for [`ConFair`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ConFairConfig {
    /// Intervention-degree selection.
    pub alpha: AlphaMode,
    /// The fairness measure the boosts optimise.
    pub target: FairnessTarget,
    /// Algorithm-3 density filtering before constraint derivation;
    /// `None` reproduces the paper's ConFair0 ablation variant.
    pub density_filter: Option<FilterConfig>,
    /// Constraint-discovery options.
    pub learn_opts: LearnOptions,
    /// Calibrate `α` with this learner instead of the deployed one —
    /// the Fig. 7 cross-model setting. `None` = calibrate with the
    /// deployed learner.
    pub calibration_learner: Option<LearnerKind>,
}

impl Default for ConFairConfig {
    fn default() -> Self {
        Self {
            alpha: AlphaMode::default(),
            target: FairnessTarget::DisparateImpact,
            density_filter: Some(FilterConfig::paper_default()),
            learn_opts: LearnOptions::paper_default(),
            calibration_learner: None,
        }
    }
}

/// The reusable output of the profiling phase: base weights plus the index
/// sets eligible for boosting. Tuning evaluates many `α` values against one
/// profile without re-deriving constraints.
#[derive(Debug, Clone)]
pub struct WeightProfile {
    base: Vec<f64>,
    boost_u: Vec<usize>,
    boost_w: Vec<usize>,
}

impl WeightProfile {
    /// Materialise Algorithm 2's weight vector for the given degrees.
    pub fn weights(&self, alpha_u: f64, alpha_w: f64) -> Vec<f64> {
        let mut w = self.base.clone();
        for &i in &self.boost_u {
            w[i] += alpha_u;
        }
        for &i in &self.boost_w {
            w[i] += alpha_w;
        }
        w
    }

    /// Indices eligible for the minority-cell boost.
    pub fn boosted_minority(&self) -> &[usize] {
        &self.boost_u
    }

    /// Indices eligible for the majority-cell boost.
    pub fn boosted_majority(&self) -> &[usize] {
        &self.boost_w
    }

    /// The skew-balancing base weights (before any boost).
    pub fn base_weights(&self) -> &[f64] {
        &self.base
    }
}

/// Build the weight profile for a training set: lines 1–7 of Algorithm 2.
pub fn build_profile(
    train: &Dataset,
    target: FairnessTarget,
    filter: Option<FilterConfig>,
    learn_opts: &LearnOptions,
) -> Result<WeightProfile> {
    let n = train.len();
    if n == 0 {
        return Err(CoreError::EmptyPartition("training set".into()));
    }

    // ---- line 5: skew-balancing base weights (the KAM term) ----
    let mut base = vec![0.0; n];
    for cell in CellIndex::binary_cells() {
        let members = train.cell_indices(cell);
        if members.is_empty() {
            continue;
        }
        let p_label = train.label_count(cell.label) as f64 / n as f64;
        let group_size = train.group_count(cell.group) as f64;
        let weight = p_label * group_size / members.len() as f64;
        for &i in &members {
            base[i] = weight;
        }
    }

    // ---- lines 2–4 (+ Algorithm 3): constraints per boosted cell ----
    // Only the cells that can receive a boost need profiling.
    let (cell_u, cell_w) = target.boosted_cells();
    let filtered: Option<Vec<(CellIndex, Vec<usize>)>> =
        filter.map(|cfg| density_filter(train, cfg));
    let profile_cell = |cell: CellIndex| -> Result<Option<(ConstraintSet, Vec<usize>)>> {
        let members = train.cell_indices(cell);
        if members.is_empty() {
            // An empty cell simply contributes no boost; the experiments'
            // splits keep cells populated, but tiny datasets may not.
            return Ok(None);
        }
        let profile_rows: Vec<usize> = match &filtered {
            Some(cells) => cells
                .iter()
                .find(|(c, _)| *c == cell)
                .map(|(_, idx)| idx.clone())
                .unwrap_or_default(),
            None => members.clone(),
        };
        if profile_rows.is_empty() {
            return Ok(None);
        }
        let x = train.numeric_matrix(Some(&profile_rows));
        let constraints = learn_constraints(&x, learn_opts);
        Ok(Some((constraints, members)))
    };

    // ---- lines 6–11: conforming tuples in the boosted cells ----
    let conforming = |profiled: Option<(ConstraintSet, Vec<usize>)>| -> Vec<usize> {
        let Some((constraints, members)) = profiled else {
            return Vec::new();
        };
        let x = train.numeric_matrix(Some(&members));
        members
            .iter()
            .zip(x.iter_rows())
            .filter(|(_, row)| constraints.violation(row) < CONFORMANCE_EPS)
            .map(|(&i, _)| i)
            .collect()
    };

    let boost_u = conforming(profile_cell(cell_u)?);
    let boost_w = match cell_w {
        Some(cell) => conforming(profile_cell(cell)?),
        None => Vec::new(),
    };

    Ok(WeightProfile {
        base,
        boost_u,
        boost_w,
    })
}

/// The ConFair intervention (Algorithm 2 + α tuning).
#[derive(Debug, Clone, Default)]
pub struct ConFair {
    /// Behavioural configuration.
    pub config: ConFairConfig,
}

impl ConFair {
    /// ConFair with the paper's defaults (auto-tuned α, DI target,
    /// Algorithm-3 filtering on).
    pub fn paper_default() -> Self {
        Self::default()
    }

    /// ConFair with a custom configuration.
    pub fn new(config: ConFairConfig) -> Self {
        Self { config }
    }

    /// The ConFair0 ablation: no density filtering before CC derivation.
    pub fn without_density_filter() -> Self {
        Self::new(ConFairConfig {
            density_filter: None,
            ..ConFairConfig::default()
        })
    }

    /// Resolve the intervention degrees, tuning on validation if requested.
    /// Returns `(α_u, α_w)`.
    pub fn resolve_alpha(
        &self,
        profile: &WeightProfile,
        train: &Dataset,
        validation: &Dataset,
        deployed_learner: LearnerKind,
    ) -> Result<(f64, f64)> {
        match &self.config.alpha {
            AlphaMode::Fixed { alpha_u, alpha_w } => Ok((*alpha_u, *alpha_w)),
            AlphaMode::Auto { grid } => {
                let calibration = self.config.calibration_learner.unwrap_or(deployed_learner);
                let result = tuning::tune_alpha(
                    profile,
                    train,
                    validation,
                    calibration,
                    self.config.target,
                    grid,
                )?;
                Ok((result.alpha_u, result.alpha_w))
            }
        }
    }
}

impl Intervention for ConFair {
    fn name(&self) -> String {
        if self.config.density_filter.is_none() {
            "ConFair0".to_string()
        } else {
            "ConFair".to_string()
        }
    }

    fn train(
        &self,
        train: &Dataset,
        validation: &Dataset,
        learner: LearnerKind,
    ) -> Result<Box<dyn Predictor>> {
        let profile = build_profile(
            train,
            self.config.target,
            self.config.density_filter,
            &self.config.learn_opts,
        )?;
        let (alpha_u, alpha_w) = self.resolve_alpha(&profile, train, validation, learner)?;
        let weights = profile.weights(alpha_u, alpha_w);
        let predictor = SingleModelPredictor::fit(train, learner, Some(&weights))?;
        Ok(Box::new(predictor))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf_data::split::{split3, SplitRatios};
    use cf_datasets::toy::figure1;
    use cf_metrics::GroupConfusion;

    fn toy_split() -> (Dataset, Dataset, Dataset) {
        let d = figure1(10);
        let s = split3(&d, SplitRatios::paper_default(), 10);
        (s.train, s.validation, s.test)
    }

    #[test]
    fn base_weights_match_kamiran_calders() {
        let (train, _, _) = toy_split();
        let profile = build_profile(
            &train,
            FairnessTarget::DisparateImpact,
            None,
            &LearnOptions::default(),
        )
        .unwrap();
        let n = train.len() as f64;
        for (i, &w) in profile.base_weights().iter().enumerate() {
            let g = train.groups()[i];
            let c = train.labels()[i];
            let expected = (train.label_count(c) as f64 / n) * train.group_count(g) as f64
                / train.cell_count(CellIndex { group: g, label: c }) as f64;
            assert!((w - expected).abs() < 1e-12, "tuple {i}");
        }
    }

    #[test]
    fn boost_sets_live_in_their_cells() {
        let (train, _, _) = toy_split();
        let profile = build_profile(
            &train,
            FairnessTarget::DisparateImpact,
            Some(FilterConfig::paper_default()),
            &LearnOptions::default(),
        )
        .unwrap();
        for &i in profile.boosted_minority() {
            assert_eq!(train.groups()[i], MINORITY);
            assert_eq!(train.labels()[i], 1);
        }
        for &i in profile.boosted_majority() {
            assert_eq!(train.groups()[i], MAJORITY);
            assert_eq!(train.labels()[i], 0);
        }
        assert!(!profile.boosted_minority().is_empty());
    }

    #[test]
    fn density_filter_shrinks_boost_set() {
        let (train, _, _) = toy_split();
        let unfiltered = build_profile(
            &train,
            FairnessTarget::DisparateImpact,
            None,
            &LearnOptions::default(),
        )
        .unwrap();
        let filtered = build_profile(
            &train,
            FairnessTarget::DisparateImpact,
            Some(FilterConfig::paper_default()),
            &LearnOptions::default(),
        )
        .unwrap();
        // Unfiltered min/max bounds admit the whole cell; filtered bounds
        // admit only the dense core.
        assert!(filtered.boosted_minority().len() < unfiltered.boosted_minority().len());
    }

    #[test]
    fn weights_monotone_in_alpha() {
        let (train, _, _) = toy_split();
        let profile = build_profile(
            &train,
            FairnessTarget::DisparateImpact,
            Some(FilterConfig::paper_default()),
            &LearnOptions::default(),
        )
        .unwrap();
        let w1 = profile.weights(1.0, 0.5);
        let w2 = profile.weights(2.0, 1.0);
        for (a, b) in w1.iter().zip(&w2) {
            assert!(b >= a, "weights grow with alpha");
        }
        // Non-boosted tuples unchanged.
        let w0 = profile.weights(0.0, 0.0);
        assert_eq!(w0, profile.base_weights());
    }

    #[test]
    fn eq_odds_targets_boost_expected_cells() {
        let (cell_u, cell_w) = FairnessTarget::EqOddsFnr.boosted_cells();
        assert_eq!(
            cell_u,
            CellIndex {
                group: MINORITY,
                label: 1
            }
        );
        assert!(cell_w.is_none());
        let (cell_u, _) = FairnessTarget::EqOddsFpr.boosted_cells();
        assert_eq!(
            cell_u,
            CellIndex {
                group: MINORITY,
                label: 0
            }
        );
    }

    #[test]
    fn confair_improves_di_on_toy_data_on_average() {
        // Any single Fig. 1 split can land where the baseline is already
        // balanced (or where validation-tuned α generalises imperfectly to
        // the test split), so assert the paper's claim in expectation over
        // seeded repetitions: ConFair lifts mean DI* while keeping utility.
        let mut base_di = 0.0;
        let mut fair_di = 0.0;
        let mut fair_acc = 0.0;
        let reps = 20u64;
        for seed in 5..5 + reps {
            let d = figure1(seed);
            let s = split3(&d, SplitRatios::paper_default(), seed);

            let baseline = crate::NoIntervention
                .train(&s.train, &s.validation, LearnerKind::Logistic)
                .unwrap();
            let base_preds = baseline.predict(&s.test).unwrap();
            base_di +=
                GroupConfusion::compute(s.test.labels(), &base_preds, s.test.groups()).di_star();

            let confair = ConFair::paper_default();
            let fair = confair
                .train(&s.train, &s.validation, LearnerKind::Logistic)
                .unwrap();
            let fair_preds = fair.predict(&s.test).unwrap();
            let gc = GroupConfusion::compute(s.test.labels(), &fair_preds, s.test.groups());
            fair_di += gc.di_star();
            fair_acc += gc.balanced_accuracy();
        }
        let n = reps as f64;
        assert!(
            fair_di / n > base_di / n + 0.02,
            "ConFair should improve mean DI*: {} -> {}",
            base_di / n,
            fair_di / n
        );
        assert!(fair_acc / n > 0.7, "utility preserved: {}", fair_acc / n);
    }

    #[test]
    fn fixed_alpha_skips_tuning() {
        let (train, val, _) = toy_split();
        let confair = ConFair::new(ConFairConfig {
            alpha: AlphaMode::Fixed {
                alpha_u: 2.0,
                alpha_w: 1.0,
            },
            ..ConFairConfig::default()
        });
        let profile = build_profile(
            &train,
            FairnessTarget::DisparateImpact,
            Some(FilterConfig::paper_default()),
            &LearnOptions::default(),
        )
        .unwrap();
        let (au, aw) = confair
            .resolve_alpha(&profile, &train, &val, LearnerKind::Logistic)
            .unwrap();
        assert_eq!((au, aw), (2.0, 1.0));
    }

    #[test]
    fn name_reflects_ablation() {
        assert_eq!(ConFair::paper_default().name(), "ConFair");
        assert_eq!(ConFair::without_density_filter().name(), "ConFair0");
    }

    #[test]
    fn empty_training_set_errors() {
        let d = figure1(1).subset(&[]);
        assert!(matches!(
            build_profile(
                &d,
                FairnessTarget::DisparateImpact,
                None,
                &LearnOptions::default()
            ),
            Err(CoreError::EmptyPartition(_))
        ));
    }
}
