//! Property tests for the core interventions.

use cf_conformance::LearnOptions;
use cf_data::{CellIndex, Column, Dataset};
use cf_density::FilterConfig;
use confair_core::confair::{build_profile, FairnessTarget};
use proptest::prelude::*;

/// Strategy: a dataset with all four (group, label) cells populated and a
/// couple of numeric attributes.
fn dataset() -> impl Strategy<Value = Dataset> {
    (16usize..60).prop_flat_map(|n| {
        proptest::collection::vec(-5.0..5.0f64, n * 2).prop_map(move |data| {
            let x1: Vec<f64> = data[..n].to_vec();
            let x2: Vec<f64> = data[n..].to_vec();
            // Deterministic labels/groups that populate all four cells.
            let labels: Vec<u8> = (0..n).map(|i| (i % 2) as u8).collect();
            let groups: Vec<u8> = (0..n).map(|i| u8::from(i % 4 < 2)).collect();
            Dataset::new(
                "prop",
                vec!["x1".into(), "x2".into()],
                vec![Column::Numeric(x1), Column::Numeric(x2)],
                labels,
                groups,
            )
            .unwrap()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn base_weights_total_mass_is_n(d in dataset()) {
        // The Kamiran–Calders balancing term redistributes mass but keeps
        // the total at n: Σ_cells |cell| · w(cell) = n.
        let profile = build_profile(&d, FairnessTarget::DisparateImpact, None, &LearnOptions::default()).unwrap();
        let total: f64 = profile.base_weights().iter().sum();
        prop_assert!((total - d.len() as f64).abs() < 1e-6, "total {}", total);
    }

    #[test]
    fn base_weights_positive(d in dataset()) {
        let profile = build_profile(&d, FairnessTarget::DisparateImpact, None, &LearnOptions::default()).unwrap();
        prop_assert!(profile.base_weights().iter().all(|&w| w > 0.0));
    }

    #[test]
    fn weights_monotone_and_boost_limited_to_cells(d in dataset(), a1 in 0.0..8.0f64, a2 in 8.0..32.0f64) {
        let profile = build_profile(
            &d,
            FairnessTarget::DisparateImpact,
            Some(FilterConfig::paper_default()),
            &LearnOptions::default(),
        ).unwrap();
        let w_small = profile.weights(a1, a1 / 2.0);
        let w_large = profile.weights(a2, a2 / 2.0);
        for (s, l) in w_small.iter().zip(&w_large) {
            prop_assert!(l >= s);
        }
        // Boosted indices live strictly in the target cells.
        for &i in profile.boosted_minority() {
            prop_assert_eq!(d.groups()[i], 1);
            prop_assert_eq!(d.labels()[i], 1);
        }
        for &i in profile.boosted_majority() {
            prop_assert_eq!(d.groups()[i], 0);
            prop_assert_eq!(d.labels()[i], 0);
        }
    }

    #[test]
    fn eq_odds_targets_leave_majority_untouched(d in dataset(), alpha in 0.1..16.0f64) {
        for target in [FairnessTarget::EqOddsFnr, FairnessTarget::EqOddsFpr] {
            let profile = build_profile(&d, target, Some(FilterConfig::paper_default()), &LearnOptions::default()).unwrap();
            let w = profile.weights(alpha, 123.0); // α_w must be inert
            for i in d.cell_indices(CellIndex { group: 0, label: 0 }) {
                prop_assert!((w[i] - profile.base_weights()[i]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn filtered_boost_set_is_subset_of_unfiltered(d in dataset()) {
        let unfiltered = build_profile(&d, FairnessTarget::DisparateImpact, None, &LearnOptions::default()).unwrap();
        let filtered = build_profile(
            &d,
            FairnessTarget::DisparateImpact,
            Some(FilterConfig::paper_default()),
            &LearnOptions::default(),
        ).unwrap();
        // Every conforming-after-filtering tuple also conforms to the looser
        // unfiltered (min/max over the whole cell) constraints.
        prop_assert!(filtered.boosted_minority().len() <= unfiltered.boosted_minority().len());
    }
}
