//! # cf-learners
//!
//! Weighted binary classifiers built from scratch — the learning substrate
//! the paper evaluates its interventions on (§IV "Models").
//!
//! * [`LogisticRegression`] — the scikit-learn `LR` stand-in: weighted
//!   log-loss, full-batch gradient descent with adaptive step size, L2.
//! * [`Gbt`] — the XGBoost stand-in: second-order gradient boosting with
//!   exact greedy regression trees, shrinkage, and leaf L2.
//!
//! Both accept per-instance weights in `fit` — the contract every reweighing
//! intervention (ConFair, KAM, OMN) relies on. Weighting a tuple by `k` is
//! equivalent to duplicating it `k` times (an invariant the tests pin down).
//!
//! [`LearnerKind`] is the factory the interventions use to retrain fresh
//! models during calibration.

pub mod gbt;
pub mod logistic;
pub mod tree;

pub use gbt::{Gbt, GbtConfig};
pub use logistic::{LogisticRegression, LogisticRegressionConfig};

use cf_linalg::Matrix;

/// Classification threshold shared by every learner.
pub const DECISION_THRESHOLD: f64 = 0.5;

/// Errors surfaced by learner training and inference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LearnError {
    /// Input buffers disagree in length.
    ShapeMismatch(String),
    /// Training data was empty.
    EmptyTrainingSet,
    /// `predict` called before `fit`.
    NotFitted,
    /// Weights were invalid (negative or all zero).
    InvalidWeights(String),
}

impl std::fmt::Display for LearnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LearnError::ShapeMismatch(msg) => write!(f, "shape mismatch: {msg}"),
            LearnError::EmptyTrainingSet => write!(f, "empty training set"),
            LearnError::NotFitted => write!(f, "model has not been fitted"),
            LearnError::InvalidWeights(msg) => write!(f, "invalid weights: {msg}"),
        }
    }
}

impl std::error::Error for LearnError {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, LearnError>;

/// A binary classifier with native per-instance weight support.
pub trait Learner: Send {
    /// Train on features `x`, labels `y ∈ {0.0, 1.0}`, and optional
    /// non-negative instance weights (defaulting to 1.0 each).
    fn fit(&mut self, x: &Matrix, y: &[f64], weights: Option<&[f64]>) -> Result<()>;

    /// Predicted probability of the positive class for each row of `x`.
    fn predict_proba(&self, x: &Matrix) -> Result<Vec<f64>>;

    /// Hard predictions at the 0.5 threshold.
    fn predict(&self, x: &Matrix) -> Result<Vec<u8>> {
        Ok(self
            .predict_proba(x)?
            .into_iter()
            .map(|p| u8::from(p >= DECISION_THRESHOLD))
            .collect())
    }

    /// Raw decision margins for each row of `x`: the pre-sigmoid score
    /// whose sign is the hard decision (`predict` is exactly
    /// `margin >= 0.0` for both built-in learners). Opt-in — the default
    /// rejects the call — because serve-time threshold repair shifts
    /// decisions by comparing margins against per-cell cutoffs, and a
    /// learner without a native margin has no boundary to shift.
    fn predict_margin(&self, _x: &Matrix) -> Result<Vec<f64>> {
        Err(LearnError::ShapeMismatch(
            "this learner does not expose raw decision margins".into(),
        ))
    }

    /// Whether `fit` has succeeded at least once.
    fn is_fitted(&self) -> bool;

    /// Snapshot the full fitted parameters for checkpointing, or `None`
    /// for learners that do not support serialisation. The built-in
    /// logistic and GBT learners both return `Some`; rebuilding via
    /// [`ModelState::build`] yields a model that scores bit-identically.
    fn state(&self) -> Option<ModelState> {
        None
    }
}

/// The serialisable parameters of a fitted built-in learner — the model
/// half of an engine checkpoint. Tagged by learner family so the right
/// concrete type is rebuilt on restore.
#[derive(Debug, Clone)]
pub enum ModelState {
    /// A fitted [`LogisticRegression`] (coefficients + intercept).
    Logistic(LogisticRegression),
    /// A fitted [`Gbt`] ensemble (trees + base score).
    Gbt(Gbt),
}

impl ModelState {
    /// Which learner family this state rebuilds.
    pub fn kind(&self) -> LearnerKind {
        match self {
            ModelState::Logistic(_) => LearnerKind::Logistic,
            ModelState::Gbt(_) => LearnerKind::Gbt,
        }
    }

    /// Rebuild the boxed learner. The restored model's predictions are
    /// bit-identical to the snapshotted one's.
    pub fn build(self) -> Box<dyn Learner> {
        match self {
            ModelState::Logistic(m) => Box::new(m),
            ModelState::Gbt(m) => Box::new(m),
        }
    }
}

impl serde::Serialize for ModelState {
    fn to_value(&self) -> serde::Value {
        let (kind, model) = match self {
            ModelState::Logistic(m) => ("LR", m.to_value()),
            ModelState::Gbt(m) => ("XGB", m.to_value()),
        };
        serde::Value::Object(vec![
            ("kind".into(), serde::Value::String(kind.into())),
            ("model".into(), model),
        ])
    }
}

impl serde::Deserialize for ModelState {
    fn from_value(v: &serde::Value) -> std::result::Result<Self, serde::Error> {
        let model = v.get_or_err("model")?;
        match v.get_or_err("kind")?.as_str() {
            Some("LR") => Ok(ModelState::Logistic(serde::Deserialize::from_value(model)?)),
            Some("XGB") => Ok(ModelState::Gbt(serde::Deserialize::from_value(model)?)),
            _ => Err(serde::Error::msg("unknown model kind")),
        }
    }
}

/// Validate the (x, y, weights) triple shared by every learner's `fit`.
pub(crate) fn validate_fit_inputs(
    x: &Matrix,
    y: &[f64],
    weights: Option<&[f64]>,
) -> Result<Vec<f64>> {
    if x.rows() == 0 {
        return Err(LearnError::EmptyTrainingSet);
    }
    if y.len() != x.rows() {
        return Err(LearnError::ShapeMismatch(format!(
            "{} labels for {} rows",
            y.len(),
            x.rows()
        )));
    }
    let w = match weights {
        Some(w) => {
            if w.len() != x.rows() {
                return Err(LearnError::ShapeMismatch(format!(
                    "{} weights for {} rows",
                    w.len(),
                    x.rows()
                )));
            }
            if w.iter().any(|&v| v < 0.0 || !v.is_finite()) {
                return Err(LearnError::InvalidWeights(
                    "weights must be finite and non-negative".into(),
                ));
            }
            if w.iter().sum::<f64>() <= 0.0 {
                return Err(LearnError::InvalidWeights("total weight is zero".into()));
            }
            w.to_vec()
        }
        None => vec![1.0; x.rows()],
    };
    Ok(w)
}

/// The learner factory: which model family to instantiate, with the default
/// hyperparameters used throughout the experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LearnerKind {
    /// Logistic regression ("LR" in the paper's figures).
    Logistic,
    /// Gradient boosted trees ("XGB" in the paper's figures).
    Gbt,
}

impl LearnerKind {
    /// Instantiate an unfitted learner with default hyperparameters.
    pub fn build(self) -> Box<dyn Learner> {
        match self {
            LearnerKind::Logistic => Box::new(LogisticRegression::default()),
            LearnerKind::Gbt => Box::new(Gbt::default()),
        }
    }

    /// The label used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            LearnerKind::Logistic => "LR",
            LearnerKind::Gbt => "XGB",
        }
    }

    /// Both learners, in the order the paper reports them.
    pub fn both() -> [LearnerKind; 2] {
        [LearnerKind::Logistic, LearnerKind::Gbt]
    }
}

impl serde::Serialize for LearnerKind {
    fn to_value(&self) -> serde::Value {
        serde::Value::String(self.name().into())
    }
}

impl serde::Deserialize for LearnerKind {
    fn from_value(v: &serde::Value) -> std::result::Result<Self, serde::Error> {
        match v.as_str() {
            Some("LR") => Ok(LearnerKind::Logistic),
            Some("XGB") => Ok(LearnerKind::Gbt),
            _ => Err(serde::Error::msg("unknown learner kind")),
        }
    }
}

/// Plain accuracy of hard predictions (used by hyperparameter validation).
pub fn accuracy(y_true: &[u8], y_pred: &[u8]) -> f64 {
    assert_eq!(y_true.len(), y_pred.len());
    if y_true.is_empty() {
        return 0.0;
    }
    let hits = y_true.iter().zip(y_pred).filter(|(a, b)| a == b).count();
    hits as f64 / y_true.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_factory_builds_unfitted_models() {
        for kind in LearnerKind::both() {
            let m = kind.build();
            assert!(!m.is_fitted());
        }
        assert_eq!(LearnerKind::Logistic.name(), "LR");
        assert_eq!(LearnerKind::Gbt.name(), "XGB");
    }

    #[test]
    fn validate_rejects_bad_inputs() {
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0]]);
        assert!(matches!(
            validate_fit_inputs(&Matrix::zeros(0, 1), &[], None),
            Err(LearnError::EmptyTrainingSet)
        ));
        assert!(matches!(
            validate_fit_inputs(&x, &[0.0], None),
            Err(LearnError::ShapeMismatch(_))
        ));
        assert!(matches!(
            validate_fit_inputs(&x, &[0.0, 1.0], Some(&[1.0])),
            Err(LearnError::ShapeMismatch(_))
        ));
        assert!(matches!(
            validate_fit_inputs(&x, &[0.0, 1.0], Some(&[-1.0, 1.0])),
            Err(LearnError::InvalidWeights(_))
        ));
        assert!(matches!(
            validate_fit_inputs(&x, &[0.0, 1.0], Some(&[0.0, 0.0])),
            Err(LearnError::InvalidWeights(_))
        ));
        assert_eq!(
            validate_fit_inputs(&x, &[0.0, 1.0], None).unwrap(),
            vec![1.0, 1.0]
        );
    }

    #[test]
    fn accuracy_counts_matches() {
        assert_eq!(accuracy(&[1, 0, 1, 1], &[1, 0, 0, 1]), 0.75);
        assert_eq!(accuracy(&[], &[]), 0.0);
    }
}
