//! The regression tree used inside gradient boosting.
//!
//! Implements XGBoost's exact greedy algorithm: at every node, each feature's
//! values are sorted and scanned once, accumulating gradient/hessian sums to
//! score candidate splits with the second-order gain
//!
//! ```text
//! gain = ½ [ G_L²/(H_L+λ) + G_R²/(H_R+λ) − G²/(H+λ) ] − γ
//! ```
//!
//! Leaf weights are `−G/(H+λ)`; shrinkage is applied by the ensemble.

use cf_linalg::Matrix;

/// Split-search hyperparameters (a subset of [`crate::GbtConfig`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeParams {
    /// Maximum tree depth (0 = a single leaf).
    pub max_depth: usize,
    /// L2 regularisation `λ` on leaf weights.
    pub lambda: f64,
    /// Minimum gain `γ` required to keep a split.
    pub gamma: f64,
    /// Minimum hessian sum per child (`min_child_weight`).
    pub min_child_weight: f64,
}

impl Default for TreeParams {
    fn default() -> Self {
        Self {
            max_depth: 4,
            lambda: 1.0,
            gamma: 0.0,
            min_child_weight: 1.0,
        }
    }
}

#[derive(Debug, Clone)]
enum TreeNode {
    Leaf {
        weight: f64,
    },
    Split {
        feature: usize,
        /// Go left when `x[feature] < threshold`.
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// A fitted regression tree mapping feature rows to leaf weights.
#[derive(Debug, Clone)]
pub struct RegressionTree {
    nodes: Vec<TreeNode>,
    root: usize,
}

impl RegressionTree {
    /// Fit to gradients/hessians on the given rows of `x`.
    ///
    /// # Panics
    /// Panics if buffer lengths disagree (callers validate upstream).
    pub fn fit(x: &Matrix, grad: &[f64], hess: &[f64], params: &TreeParams) -> Self {
        assert_eq!(x.rows(), grad.len());
        assert_eq!(x.rows(), hess.len());
        let mut nodes = Vec::new();
        let rows: Vec<usize> = (0..x.rows()).collect();
        let root = build(x, grad, hess, rows, params.max_depth, params, &mut nodes);
        Self { nodes, root }
    }

    /// The raw leaf weight for one feature row.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        let mut node = self.root;
        loop {
            match &self.nodes[node] {
                TreeNode::Leaf { weight } => return *weight,
                TreeNode::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if row[*feature] < *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Leaf weights for every row of `x`.
    pub fn predict(&self, x: &Matrix) -> Vec<f64> {
        x.iter_rows().map(|row| self.predict_row(row)).collect()
    }

    /// Number of nodes (leaves + splits) — used to gauge model complexity.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Validate that every split's children are in-bounds and the node
    /// graph reachable from `root` is a tree (no index cycles), so a
    /// corrupted serialised tree fails loudly at deserialisation time
    /// instead of looping or panicking inside `predict_row`.
    fn validate(&self) -> Result<(), String> {
        if self.root >= self.nodes.len() {
            return Err(format!(
                "tree root {} out of bounds for {} nodes",
                self.root,
                self.nodes.len()
            ));
        }
        let mut visited = vec![false; self.nodes.len()];
        let mut stack = vec![self.root];
        while let Some(i) = stack.pop() {
            if visited[i] {
                return Err(format!("tree node {i} is reachable twice (cycle)"));
            }
            visited[i] = true;
            if let TreeNode::Split { left, right, .. } = &self.nodes[i] {
                for &child in [left, right] {
                    if child >= self.nodes.len() {
                        return Err(format!(
                            "tree child {child} out of bounds for {} nodes",
                            self.nodes.len()
                        ));
                    }
                    stack.push(child);
                }
            }
        }
        Ok(())
    }

    /// The largest feature index any split consults (`None` for a
    /// single-leaf tree). Deserialised ensembles check this against their
    /// declared feature count so a corrupted tree cannot index past a
    /// prediction row.
    pub fn max_feature_index(&self) -> Option<usize> {
        self.nodes
            .iter()
            .filter_map(|n| match n {
                TreeNode::Leaf { .. } => None,
                TreeNode::Split { feature, .. } => Some(*feature),
            })
            .max()
    }

    /// Depth of the deepest leaf.
    pub fn depth(&self) -> usize {
        fn rec(nodes: &[TreeNode], i: usize) -> usize {
            match &nodes[i] {
                TreeNode::Leaf { .. } => 0,
                TreeNode::Split { left, right, .. } => {
                    1 + rec(nodes, *left).max(rec(nodes, *right))
                }
            }
        }
        rec(&self.nodes, self.root)
    }

    /// Compile into the flattened, branch-predictable [`FlatTree`] form.
    ///
    /// # Panics
    /// Panics if a split's child index is out of bounds — fitted trees are
    /// in-bounds by construction and deserialised trees are validated, so
    /// this only fires on a hand-built inconsistent tree. Asserting here,
    /// once per tree, is what lets the batch kernel walk the node arrays
    /// without per-step bounds checks.
    pub fn flatten(&self) -> FlatTree {
        let n = self.nodes.len();
        let mut feature = vec![0u32; n];
        let mut value = vec![0.0f64; n];
        let mut children = vec![0u64; n];
        for (i, node) in self.nodes.iter().enumerate() {
            match node {
                // Leaves self-loop: once a cursor arrives, further descent
                // steps are no-ops, so the batch walker can run a fixed
                // number of iterations with no per-step "am I done" branch.
                // `feature` stays 0 — a safe in-bounds column whose
                // comparison result is irrelevant on a self-loop.
                TreeNode::Leaf { weight } => {
                    value[i] = *weight;
                    children[i] = pack_children(i, i);
                }
                TreeNode::Split {
                    feature: f,
                    threshold,
                    left: l,
                    right: r,
                } => {
                    assert!(
                        *l < n && *r < n,
                        "split {i} has out-of-bounds child ({l}, {r}) for {n} nodes"
                    );
                    feature[i] = *f as u32;
                    value[i] = *threshold;
                    children[i] = pack_children(*l, *r);
                }
            }
        }
        assert!(
            self.root < n,
            "root {} out of bounds for {n} nodes",
            self.root
        );
        let depth = self.depth() as u32;
        let (heap_feature, heap_value) = if depth <= HEAP_DEPTH_MAX {
            self.build_heap(depth)
        } else {
            (Vec::new(), Vec::new())
        };
        FlatTree {
            feature,
            value,
            children,
            heap_feature,
            heap_value,
            root: self.root as u32,
            depth,
            min_width: self.max_feature_index().map_or(0, |f| f as u32 + 1),
        }
    }

    /// Build the perfect-heap form (see the [`FlatTree::heap_value`]
    /// docs): the tree padded to a perfect binary tree of height `depth`
    /// in level order. Leaves shallower than `depth` are copied down both
    /// virtual branches (feature 0, threshold 0.0 — the comparison result
    /// is irrelevant when both children are the same copy), so a cursor
    /// descending exactly `depth` levels always lands on the right leaf's
    /// weight in the bottom level.
    fn build_heap(&self, depth: u32) -> (Vec<u32>, Vec<f64>) {
        let internal = (1usize << depth) - 1;
        let mut hf = vec![0u32; internal];
        let mut hv = vec![0.0f64; (1usize << (depth + 1)) - 1];
        self.fill_heap(self.root, 0, 0, depth, &mut hf, &mut hv);
        (hf, hv)
    }

    fn fill_heap(
        &self,
        node: usize,
        heap: usize,
        level: u32,
        depth: u32,
        hf: &mut [u32],
        hv: &mut [f64],
    ) {
        if level == depth {
            // `depth` is the deepest leaf, so every path has terminated by
            // here: `node` is a leaf (possibly a shallower leaf copied
            // down), and the bottom level stores its weight.
            match &self.nodes[node] {
                TreeNode::Leaf { weight } => hv[heap] = *weight,
                TreeNode::Split { .. } => unreachable!("split below the deepest leaf"),
            }
            return;
        }
        let (left, right) = match &self.nodes[node] {
            TreeNode::Leaf { .. } => (node, node),
            TreeNode::Split {
                feature,
                threshold,
                left,
                right,
            } => {
                hf[heap] = *feature as u32;
                hv[heap] = *threshold;
                (*left, *right)
            }
        };
        self.fill_heap(left, 2 * heap + 1, level + 1, depth, hf, hv);
        self.fill_heap(right, 2 * heap + 2, level + 1, depth, hf, hv);
    }
}

/// A fitted regression tree compiled to structure-of-arrays form for the
/// batch scoring kernel.
///
/// The recursive [`RegressionTree`] stores an enum per node: every descent
/// step is a discriminant match plus a pointer-sized jump the branch
/// predictor cannot learn (the path depends on data). The flat form stores
/// the same tree as parallel node arrays, with leaves encoded as
/// *self-loops* (`left == right == self`). Descent then needs no
/// leaf-vs-split branch at all: every step is
///
/// ```text
/// n = if row[feature[n]] < value[n] { left[n] } else { right[n] }
/// ```
///
/// and running exactly `depth` steps is guaranteed to land on a leaf —
/// cursors that arrive early just spin in place. `value` is overloaded:
/// the split threshold on interior nodes, the leaf weight on leaves (the
/// two are never needed at the same node). Built once at fit/deserialise
/// time and never serialised — the wire format stays the v4 node-enum
/// document.
#[derive(Debug, Clone)]
pub struct FlatTree {
    /// Split feature per node (0 on leaves — safe, unused).
    feature: Vec<u32>,
    /// Split threshold on interior nodes; leaf weight on leaves.
    value: Vec<f64>,
    /// Child pair per node, packed `left | right << 32` (`self | self`
    /// on leaves). Packing lets the descent select a child with a shift
    /// (`pack >> (32 * go_right)`) — pure ALU work — instead of either a
    /// branch or a compare-dependent second load. Split directions are
    /// close to 50/50 by construction (that is what a good split does),
    /// the one case where a data-dependent branch is guaranteed to
    /// mispredict; and the pack is loaded *before* the compare resolves,
    /// so the only thing on the post-compare critical path is the shift.
    ///
    /// Invariant (established by `flatten`'s asserts, relied on by the
    /// unchecked loads in [`FlatTree::sweep`]): every packed index, and
    /// `root`, is `< feature.len() == value.len() == children.len()`.
    children: Vec<u64>,
    /// Split feature per *internal* slot of the perfect-heap form:
    /// `2^depth − 1` slots in level order (empty above
    /// [`HEAP_DEPTH_MAX`]). Padding slots (under a shallow leaf) keep
    /// feature 0 — in-bounds, result irrelevant.
    heap_feature: Vec<u32>,
    /// The perfect-heap form the batch kernel actually sweeps when the
    /// tree is shallow enough to pad: the tree completed to a perfect
    /// binary tree of height `depth`, stored in level order
    /// (`2^(depth+1) − 1` slots; thresholds on internal slots, leaf
    /// weights across the whole bottom level, shallow leaves copied down
    /// both virtual branches). Descent is then pure index arithmetic —
    /// `n = 2n + 1 + (x < v is false)` — with no child-pointer load at
    /// all, which drops a descent step from four loads to three and the
    /// child select from shift+mask to one `lea`; the kernel is
    /// issue-width bound, so fewer µops per step is directly more
    /// throughput. Empty when `depth > HEAP_DEPTH_MAX` (padding doubles
    /// per level); the kernel then falls back to [`FlatTree::sweep`] over
    /// the explicit-children arrays above, which always exist and always
    /// agree.
    heap_value: Vec<f64>,
    root: u32,
    /// Depth of the deepest leaf: after this many descent steps every
    /// cursor sits on a leaf.
    depth: u32,
    /// `max_feature_index + 1` (0 for a single-leaf tree): the narrowest
    /// row this tree can score. The batch kernel asserts rows are at
    /// least this wide once per call, which makes every per-step feature
    /// lookup provably in-bounds.
    min_width: u32,
}

/// How many descent chains `accumulate_margins` keeps in flight. Each
/// chain is latency-bound (load feature → load row value → compare →
/// select child), so eight independent chains give the out-of-order core
/// enough work to hide each chain's serial latency.
const CHAINS: usize = 16;

/// Deepest tree the perfect-heap form is built for: padding doubles per
/// level, so height 10 costs at most `2^11 − 1` slots (~16 KiB of
/// thresholds/weights — still comfortably L1-resident next to a row
/// block). Fitted trees are far shallower (`GbtConfig` depth defaults
/// to 4); only a pathological deserialised document exceeds this, and
/// those score through the explicit-children sweep instead.
const HEAP_DEPTH_MAX: u32 = 10;

/// Pack a `[left, right]` child pair into the shift-selectable u64 form.
fn pack_children(left: usize, right: usize) -> u64 {
    left as u64 | (right as u64) << 32
}

/// Select a child from a packed pair: `go_left` picks the low half
/// (left), otherwise the high half (right).
#[inline(always)]
fn select_child(pack: u64, go_left: bool) -> usize {
    ((pack >> (u32::from(!go_left) * 32)) & 0xffff_ffff) as usize
}

impl FlatTree {
    /// One descent step; on leaves (self-loops) this is the identity.
    #[inline(always)]
    fn step(&self, row: &[f64], n: usize) -> usize {
        // The comparison must be the recursive walker's own
        // `row[feature] < threshold`, negated as a *boolean* — writing
        // `>=` instead would flip the NaN cases, where `<` and `>=` are
        // both false (NaN on either side must go right, exactly like the
        // reference).
        let go_left = row[self.feature[n] as usize] < self.value[n];
        select_child(self.children[n], go_left)
    }

    /// The raw leaf weight for one feature row — bit-identical to
    /// [`RegressionTree::predict_row`] on the source tree.
    #[inline]
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        let mut n = self.root as usize;
        for _ in 0..self.depth {
            n = self.step(row, n);
        }
        self.value[n]
    }

    /// Accumulate `eta * leaf_weight(row)` into `out` for every row of
    /// the row-major block `rows` (stride `d`): one tree over all rows,
    /// so this tree's node arrays stay in L1 while rows stream past.
    /// `CHAINS` rows are kept in flight so the independent descent
    /// chains overlap. Callers that score many rows should hand this
    /// L1-sized row blocks (see `Gbt::predict_margin_rows`): the win of
    /// tree-outer iteration is node locality, and it only compounds when
    /// the row block also stays cache-resident across trees.
    ///
    /// # Panics
    /// Panics if `rows.len() != out.len() * d` or if `d` is narrower than
    /// the widest feature index this tree consults (callers size the
    /// margin buffer and the rows against the fitted width).
    pub fn accumulate_margins(&self, rows: &[f64], d: usize, eta: f64, out: &mut [f64]) {
        assert_eq!(rows.len(), out.len() * d);
        assert!(
            d >= self.min_width as usize,
            "rows of width {d} for a tree consulting feature {}",
            self.min_width.saturating_sub(1),
        );
        let tail = if self.heap_value.is_empty() {
            self.sweep(rows, d, eta, out)
        } else {
            self.sweep_heap(rows, d, eta, out)
        };
        for (j, o) in out.iter_mut().enumerate().skip(tail) {
            *o += eta * self.predict_row(&rows[j * d..(j + 1) * d]);
        }
    }

    /// The chained sweep over the perfect-heap form: per descent step,
    /// three loads (feature, threshold, row gather), one compare, and an
    /// address computation — no child load, no select. Returns the index
    /// of the first row left for the scalar remainder loop.
    fn sweep_heap(&self, rows: &[f64], d: usize, eta: f64, out: &mut [f64]) -> usize {
        let feature = self.heap_feature.as_slice();
        let value = self.heap_value.as_slice();
        let depth = self.depth as usize;
        let mut i = 0;
        while i + CHAINS <= out.len() {
            let base = i * d;
            let mut ns = [0usize; CHAINS];
            for _ in 0..depth {
                for (j, n) in ns.iter_mut().enumerate() {
                    // SAFETY: after `s < depth` descent steps
                    // `*n < 2^(s+1) − 1 <= 2^depth − 1 == feature.len()`,
                    // and `value.len() == 2^(depth+1) − 1 > feature.len()`.
                    let f = unsafe { *feature.get_unchecked(*n) } as usize;
                    let v = unsafe { *value.get_unchecked(*n) };
                    // SAFETY: `f < min_width <= d` (padding slots keep
                    // feature 0, real ones are fitted/validated split
                    // indices), and `base + j*d + f < (i + j + 1) * d <=
                    // out.len() * d == rows.len()` — both asserted by
                    // `accumulate_margins`.
                    let x = unsafe { *rows.get_unchecked(base + j * d + f) };
                    // The recursive walker's own `row[feature] < threshold`
                    // as a *boolean* (never rewritten to `>=`, which would
                    // flip the NaN cases): true descends to the left child
                    // `2n + 1`, false — including NaN on either side — to
                    // the right child `2n + 2`.
                    *n = 2 * *n + 2 - usize::from(x < v);
                }
            }
            for j in 0..CHAINS {
                // SAFETY: `ns[j] < 2^(depth+1) − 1 == value.len()`.
                out[i + j] += eta * unsafe { *value.get_unchecked(ns[j]) };
            }
            i += CHAINS;
        }
        i
    }

    /// The chained sweep: [`CHAINS`] descent cursors in flight, every load
    /// unchecked. Each chain's step is a serial ~13-cycle dependence
    /// (node load → row gather → compare → child select), so throughput
    /// comes entirely from the chains overlapping in the out-of-order
    /// window; per-step bounds checks would both lengthen that chain and
    /// burn the issue slots the overlap needs. Returns the index of the
    /// first row left for the scalar remainder loop.
    fn sweep(&self, rows: &[f64], d: usize, eta: f64, out: &mut [f64]) -> usize {
        let feature = self.feature.as_slice();
        let value = self.value.as_slice();
        let children = self.children.as_slice();
        let root = self.root as usize;
        let mut i = 0;
        while i + CHAINS <= out.len() {
            let base = i * d;
            let mut ns = [root; CHAINS];
            for _ in 0..self.depth {
                for (j, n) in ns.iter_mut().enumerate() {
                    // SAFETY: `*n` is `root` or a packed child index, both
                    // `< len` by the `flatten` invariant on `children`.
                    let f = unsafe { *feature.get_unchecked(*n) } as usize;
                    let v = unsafe { *value.get_unchecked(*n) };
                    let c = unsafe { *children.get_unchecked(*n) };
                    // SAFETY: `f < min_width <= d` (asserted by the
                    // caller), and `base + j*d + f < (i + j + 1) * d <=
                    // out.len() * d == rows.len()` (asserted entry-wise by
                    // `accumulate_margins`).
                    let x = unsafe { *rows.get_unchecked(base + j * d + f) };
                    *n = select_child(c, x < v);
                }
            }
            for j in 0..CHAINS {
                // SAFETY: `ns[j] < len` as above.
                out[i + j] += eta * unsafe { *value.get_unchecked(ns[j]) };
            }
            i += CHAINS;
        }
        i
    }
}

// Manual serde impls: `TreeNode` is an enum, beyond the derive shim. Leaves
// serialise as `{"weight": w}`, splits as
// `{"feature": j, "threshold": t, "left": l, "right": r}`; thresholds and
// weights round-trip bit-exactly, so a restored tree routes and scores every
// row identically.
impl serde::Serialize for TreeNode {
    fn to_value(&self) -> serde::Value {
        match self {
            TreeNode::Leaf { weight } => {
                serde::Value::Object(vec![("weight".into(), serde::Value::Number(*weight))])
            }
            TreeNode::Split {
                feature,
                threshold,
                left,
                right,
            } => serde::Value::Object(vec![
                ("feature".into(), serde::Value::Number(*feature as f64)),
                ("threshold".into(), serde::Value::Number(*threshold)),
                ("left".into(), serde::Value::Number(*left as f64)),
                ("right".into(), serde::Value::Number(*right as f64)),
            ]),
        }
    }
}

impl serde::Deserialize for TreeNode {
    fn from_value(v: &serde::Value) -> std::result::Result<Self, serde::Error> {
        if let Some(w) = v.get("weight") {
            return Ok(TreeNode::Leaf {
                weight: serde::Deserialize::from_value(w)?,
            });
        }
        Ok(TreeNode::Split {
            feature: serde::Deserialize::from_value(v.get_or_err("feature")?)?,
            threshold: serde::Deserialize::from_value(v.get_or_err("threshold")?)?,
            left: serde::Deserialize::from_value(v.get_or_err("left")?)?,
            right: serde::Deserialize::from_value(v.get_or_err("right")?)?,
        })
    }
}

impl serde::Serialize for RegressionTree {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("nodes".into(), self.nodes.to_value()),
            ("root".into(), serde::Value::Number(self.root as f64)),
        ])
    }
}

impl serde::Deserialize for RegressionTree {
    fn from_value(v: &serde::Value) -> std::result::Result<Self, serde::Error> {
        let tree = RegressionTree {
            nodes: serde::Deserialize::from_value(v.get_or_err("nodes")?)?,
            root: serde::Deserialize::from_value(v.get_or_err("root")?)?,
        };
        if tree.nodes.is_empty() {
            return Err(serde::Error::msg("a regression tree needs nodes"));
        }
        tree.validate().map_err(serde::Error::msg)?;
        Ok(tree)
    }
}

fn leaf_weight(g: f64, h: f64, lambda: f64) -> f64 {
    -g / (h + lambda)
}

fn build(
    x: &Matrix,
    grad: &[f64],
    hess: &[f64],
    rows: Vec<usize>,
    depth_left: usize,
    params: &TreeParams,
    nodes: &mut Vec<TreeNode>,
) -> usize {
    let g_total: f64 = rows.iter().map(|&i| grad[i]).sum();
    let h_total: f64 = rows.iter().map(|&i| hess[i]).sum();

    let make_leaf = |nodes: &mut Vec<TreeNode>| {
        nodes.push(TreeNode::Leaf {
            weight: leaf_weight(g_total, h_total, params.lambda),
        });
        nodes.len() - 1
    };

    if depth_left == 0 || rows.len() < 2 {
        return make_leaf(nodes);
    }

    // Exact greedy: scan every feature's sorted values for the best split.
    let parent_score = g_total * g_total / (h_total + params.lambda);
    let mut best: Option<(f64, usize, f64)> = None; // (gain, feature, threshold)
    let mut sorted: Vec<(f64, f64, f64)> = Vec::with_capacity(rows.len());
    for feature in 0..x.cols() {
        sorted.clear();
        sorted.extend(rows.iter().map(|&i| (x[(i, feature)], grad[i], hess[i])));
        sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("NaN feature value"));

        let mut g_left = 0.0;
        let mut h_left = 0.0;
        for k in 0..sorted.len() - 1 {
            g_left += sorted[k].1;
            h_left += sorted[k].2;
            // Can't split between equal values.
            if sorted[k].0 == sorted[k + 1].0 {
                continue;
            }
            let h_right = h_total - h_left;
            if h_left < params.min_child_weight || h_right < params.min_child_weight {
                continue;
            }
            let g_right = g_total - g_left;
            let gain = 0.5
                * (g_left * g_left / (h_left + params.lambda)
                    + g_right * g_right / (h_right + params.lambda)
                    - parent_score)
                - params.gamma;
            if gain > best.map_or(0.0, |b| b.0) {
                let threshold = 0.5 * (sorted[k].0 + sorted[k + 1].0);
                best = Some((gain, feature, threshold));
            }
        }
    }

    let Some((_, feature, threshold)) = best else {
        return make_leaf(nodes);
    };

    let (left_rows, right_rows): (Vec<usize>, Vec<usize>) =
        rows.into_iter().partition(|&i| x[(i, feature)] < threshold);
    debug_assert!(!left_rows.is_empty() && !right_rows.is_empty());

    let left = build(x, grad, hess, left_rows, depth_left - 1, params, nodes);
    let right = build(x, grad, hess, right_rows, depth_left - 1, params, nodes);
    nodes.push(TreeNode::Split {
        feature,
        threshold,
        left,
        right,
    });
    nodes.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Squared-error boosting reduction: g = pred − y with pred = 0, h = 1.
    fn regression_setup(xs: &[f64], ys: &[f64]) -> (Matrix, Vec<f64>, Vec<f64>) {
        let x = Matrix::from_rows(&xs.iter().map(|&v| vec![v]).collect::<Vec<_>>());
        let grad: Vec<f64> = ys.iter().map(|&y| -y).collect();
        let hess = vec![1.0; ys.len()];
        (x, grad, hess)
    }

    #[test]
    fn fits_a_step_function() {
        let xs = [0.0, 1.0, 2.0, 3.0, 10.0, 11.0, 12.0, 13.0];
        let ys = [0.0, 0.0, 0.0, 0.0, 4.0, 4.0, 4.0, 4.0];
        let (x, g, h) = regression_setup(&xs, &ys);
        let tree = RegressionTree::fit(
            &x,
            &g,
            &h,
            &TreeParams {
                lambda: 0.0,
                min_child_weight: 0.0,
                ..TreeParams::default()
            },
        );
        // Predictions approximate the two plateaus.
        for (i, &xv) in xs.iter().enumerate() {
            let p = tree.predict_row(&[xv]);
            assert!((p - ys[i]).abs() < 1e-9, "x={xv} p={p}");
        }
    }

    #[test]
    fn depth_zero_is_single_leaf() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys = [0.0, 0.0, 1.0, 1.0];
        let (x, g, h) = regression_setup(&xs, &ys);
        let tree = RegressionTree::fit(
            &x,
            &g,
            &h,
            &TreeParams {
                max_depth: 0,
                lambda: 0.0,
                ..TreeParams::default()
            },
        );
        assert_eq!(tree.node_count(), 1);
        assert_eq!(tree.depth(), 0);
        // Single leaf = mean of y (with λ=0, h=1 each): −(−2)/4 = 0.5.
        assert!((tree.predict_row(&[0.0]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn gamma_prunes_weak_splits() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys = [0.0, 0.1, 0.0, 0.1]; // nearly constant target
        let (x, g, h) = regression_setup(&xs, &ys);
        let no_gamma = RegressionTree::fit(
            &x,
            &g,
            &h,
            &TreeParams {
                gamma: 0.0,
                lambda: 0.0,
                min_child_weight: 0.0,
                ..TreeParams::default()
            },
        );
        let with_gamma = RegressionTree::fit(
            &x,
            &g,
            &h,
            &TreeParams {
                gamma: 10.0,
                lambda: 0.0,
                min_child_weight: 0.0,
                ..TreeParams::default()
            },
        );
        assert!(with_gamma.node_count() <= no_gamma.node_count());
        assert_eq!(with_gamma.node_count(), 1, "large gamma forces a stump");
    }

    #[test]
    fn min_child_weight_blocks_tiny_children() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys = [0.0, 0.0, 0.0, 5.0];
        let (x, g, h) = regression_setup(&xs, &ys);
        let tree = RegressionTree::fit(
            &x,
            &g,
            &h,
            &TreeParams {
                min_child_weight: 2.0, // each child needs ≥ 2 rows (h = 1 each)
                lambda: 0.0,
                ..TreeParams::default()
            },
        );
        // The only useful split (isolating x=3) would leave a child with
        // hessian 1 < 2, so it must be rejected: best remaining split is 2/2.
        let p0 = tree.predict_row(&[0.5]);
        let p3 = tree.predict_row(&[3.0]);
        assert!((p0 - 0.0).abs() < 1e-9);
        assert!((p3 - 2.5).abs() < 1e-9, "x≥2 leaf averages 0 and 5");
    }

    #[test]
    fn constant_features_yield_single_leaf() {
        let x = Matrix::from_rows(&[vec![1.0], vec![1.0], vec![1.0]]);
        let g = vec![-1.0, 0.0, 1.0];
        let h = vec![1.0; 3];
        let tree = RegressionTree::fit(&x, &g, &h, &TreeParams::default());
        assert_eq!(tree.node_count(), 1);
    }

    #[test]
    fn respects_max_depth() {
        let xs: Vec<f64> = (0..64).map(|i| i as f64).collect();
        let ys: Vec<f64> = (0..64).map(|i| (i % 2) as f64).collect();
        let (x, g, h) = regression_setup(&xs, &ys);
        let tree = RegressionTree::fit(
            &x,
            &g,
            &h,
            &TreeParams {
                max_depth: 3,
                lambda: 0.0,
                min_child_weight: 0.0,
                ..TreeParams::default()
            },
        );
        assert!(tree.depth() <= 3);
    }

    #[test]
    fn flat_form_matches_recursive_walker_on_fitted_trees() {
        let xs: Vec<f64> = (0..64).map(|i| (i * 37 % 64) as f64).collect();
        let ys: Vec<f64> = (0..64).map(|i| ((i * 13) % 5) as f64).collect();
        let (x, g, h) = regression_setup(&xs, &ys);
        let tree = RegressionTree::fit(
            &x,
            &g,
            &h,
            &TreeParams {
                lambda: 0.0,
                min_child_weight: 0.0,
                ..TreeParams::default()
            },
        );
        let flat = tree.flatten();
        for row in x.iter_rows() {
            assert_eq!(
                flat.predict_row(row).to_bits(),
                tree.predict_row(row).to_bits()
            );
        }
        // Batch accumulation over all rows (tile + remainder lanes).
        let mut margins = vec![0.25; x.rows()];
        flat.accumulate_margins(x.as_slice(), x.cols(), 0.3, &mut margins);
        for (i, row) in x.iter_rows().enumerate() {
            let expected = 0.25 + 0.3 * tree.predict_row(row);
            assert_eq!(margins[i].to_bits(), expected.to_bits());
        }
    }

    #[test]
    fn flat_single_leaf_tree_is_depth_zero_self_loop() {
        let tree = RegressionTree {
            nodes: vec![TreeNode::Leaf { weight: -1.5 }],
            root: 0,
        };
        let flat = tree.flatten();
        assert_eq!(flat.depth, 0);
        assert_eq!(flat.children[0], pack_children(0, 0));
        assert_eq!(flat.predict_row(&[]).to_bits(), (-1.5f64).to_bits());
        let x = Matrix::from_rows(&[vec![9.0], vec![-9.0], vec![0.0]]);
        let mut margins = vec![0.0; 3];
        flat.accumulate_margins(x.as_slice(), x.cols(), 1.0, &mut margins);
        assert!(margins.iter().all(|m| m.to_bits() == (-1.5f64).to_bits()));
    }

    #[test]
    fn wide_feature_tree_sweeps_like_the_recursive_walker() {
        // A split consulting feature 2¹⁶ stresses the `min_width` bound
        // that licenses the kernel's unchecked row gathers — the batch
        // sweep must agree with the recursive walker on both the chained
        // and remainder rows even when rows are this wide.
        const WIDE: usize = 1 << 16;
        let tree = RegressionTree {
            nodes: vec![
                TreeNode::Leaf { weight: -3.0 },
                TreeNode::Leaf { weight: 4.0 },
                TreeNode::Split {
                    feature: WIDE,
                    threshold: 0.5,
                    left: 0,
                    right: 1,
                },
            ],
            root: 2,
        };
        let flat = tree.flatten();
        assert_eq!(flat.min_width as usize, WIDE + 1);
        let rows = CHAINS + 3; // chained groups plus remainder lanes
        let mut data = vec![0.0f64; rows * (WIDE + 1)];
        for (i, row) in data.chunks_mut(WIDE + 1).enumerate() {
            row[WIDE] = i as f64 - 8.0;
        }
        let mut margins = vec![0.0f64; rows];
        flat.accumulate_margins(&data, WIDE + 1, 0.5, &mut margins);
        for (i, row) in data.chunks(WIDE + 1).enumerate() {
            let expected = 0.5 * tree.predict_row(row);
            assert_eq!(margins[i].to_bits(), expected.to_bits());
        }
    }

    #[test]
    fn deep_tree_beyond_heap_limit_sweeps_like_the_recursive_walker() {
        // A comb of HEAP_DEPTH_MAX + 2 splits exceeds the perfect-heap
        // padding limit, so `flatten` leaves the heap form empty and the
        // batch kernel runs the explicit-children sweep — which must
        // agree with the recursive walker on chained and remainder rows.
        let deep = (HEAP_DEPTH_MAX + 2) as usize;
        let mut nodes = Vec::new();
        for k in 0..deep {
            // Split k: `x < k` drops to leaf −k, otherwise on to split k+1
            // (the last split's right child is the terminal leaf).
            let right = if k + 1 < deep { k + 1 } else { 2 * deep };
            nodes.push(TreeNode::Split {
                feature: 0,
                threshold: k as f64,
                left: deep + k,
                right,
            });
        }
        for k in 0..deep {
            nodes.push(TreeNode::Leaf {
                weight: -(k as f64),
            });
        }
        nodes.push(TreeNode::Leaf { weight: 99.0 });
        let tree = RegressionTree { nodes, root: 0 };
        assert!(tree.depth() > HEAP_DEPTH_MAX as usize);
        let flat = tree.flatten();
        assert!(flat.heap_value.is_empty());
        let rows = 2 * CHAINS + 3; // chained groups plus remainder lanes
        let data: Vec<f64> = (0..rows).map(|i| i as f64 - 2.5).collect();
        let mut margins = vec![0.5; rows];
        flat.accumulate_margins(&data, 1, 2.0, &mut margins);
        for (i, x) in data.iter().enumerate() {
            let expected = 0.5 + 2.0 * tree.predict_row(std::slice::from_ref(x));
            assert_eq!(margins[i].to_bits(), expected.to_bits());
        }
    }

    #[test]
    fn nan_threshold_routes_right_in_both_walkers() {
        // Fitted trees cannot carry NaN thresholds (fit sorts would panic,
        // and the JSON wire format cannot encode NaN), but the kernel
        // contract is defined for any tree the type can represent: with a
        // NaN threshold `row[f] < NaN` is false for every value, so both
        // walkers must send everything right. Same for NaN *feature
        // values* against a finite threshold.
        let tree = RegressionTree {
            nodes: vec![
                TreeNode::Leaf { weight: 1.0 },
                TreeNode::Leaf { weight: 2.0 },
                TreeNode::Split {
                    feature: 0,
                    threshold: f64::NAN,
                    left: 0,
                    right: 1,
                },
            ],
            root: 2,
        };
        let flat = tree.flatten();
        for v in [-1e300, -1.0, 0.0, 1.0, 1e300, f64::NAN] {
            assert_eq!(tree.predict_row(&[v]), 2.0);
            assert_eq!(flat.predict_row(&[v]), 2.0);
        }
        let finite = RegressionTree {
            nodes: vec![
                TreeNode::Leaf { weight: 1.0 },
                TreeNode::Leaf { weight: 2.0 },
                TreeNode::Split {
                    feature: 0,
                    threshold: 0.5,
                    left: 0,
                    right: 1,
                },
            ],
            root: 2,
        };
        let finite_flat = finite.flatten();
        assert_eq!(finite.predict_row(&[f64::NAN]), 2.0);
        assert_eq!(finite_flat.predict_row(&[f64::NAN]), 2.0);
    }

    #[test]
    fn multi_feature_split_picks_informative_feature() {
        // Feature 0 is noise; feature 1 perfectly separates.
        let x = Matrix::from_rows(&[
            vec![0.3, 0.0],
            vec![0.9, 0.0],
            vec![0.1, 1.0],
            vec![0.7, 1.0],
        ]);
        let g = vec![0.0, 0.0, -1.0, -1.0];
        let h = vec![1.0; 4];
        let tree = RegressionTree::fit(
            &x,
            &g,
            &h,
            &TreeParams {
                max_depth: 1,
                lambda: 0.0,
                min_child_weight: 0.0,
                ..TreeParams::default()
            },
        );
        // Predict by feature 1 regardless of feature 0.
        assert!(tree.predict_row(&[0.5, 0.0]) < tree.predict_row(&[0.5, 1.0]));
    }
}
