//! The regression tree used inside gradient boosting.
//!
//! Implements XGBoost's exact greedy algorithm: at every node, each feature's
//! values are sorted and scanned once, accumulating gradient/hessian sums to
//! score candidate splits with the second-order gain
//!
//! ```text
//! gain = ½ [ G_L²/(H_L+λ) + G_R²/(H_R+λ) − G²/(H+λ) ] − γ
//! ```
//!
//! Leaf weights are `−G/(H+λ)`; shrinkage is applied by the ensemble.

use cf_linalg::Matrix;

/// Split-search hyperparameters (a subset of [`crate::GbtConfig`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeParams {
    /// Maximum tree depth (0 = a single leaf).
    pub max_depth: usize,
    /// L2 regularisation `λ` on leaf weights.
    pub lambda: f64,
    /// Minimum gain `γ` required to keep a split.
    pub gamma: f64,
    /// Minimum hessian sum per child (`min_child_weight`).
    pub min_child_weight: f64,
}

impl Default for TreeParams {
    fn default() -> Self {
        Self {
            max_depth: 4,
            lambda: 1.0,
            gamma: 0.0,
            min_child_weight: 1.0,
        }
    }
}

#[derive(Debug, Clone)]
enum TreeNode {
    Leaf {
        weight: f64,
    },
    Split {
        feature: usize,
        /// Go left when `x[feature] < threshold`.
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// A fitted regression tree mapping feature rows to leaf weights.
#[derive(Debug, Clone)]
pub struct RegressionTree {
    nodes: Vec<TreeNode>,
    root: usize,
}

impl RegressionTree {
    /// Fit to gradients/hessians on the given rows of `x`.
    ///
    /// # Panics
    /// Panics if buffer lengths disagree (callers validate upstream).
    pub fn fit(x: &Matrix, grad: &[f64], hess: &[f64], params: &TreeParams) -> Self {
        assert_eq!(x.rows(), grad.len());
        assert_eq!(x.rows(), hess.len());
        let mut nodes = Vec::new();
        let rows: Vec<usize> = (0..x.rows()).collect();
        let root = build(x, grad, hess, rows, params.max_depth, params, &mut nodes);
        Self { nodes, root }
    }

    /// The raw leaf weight for one feature row.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        let mut node = self.root;
        loop {
            match &self.nodes[node] {
                TreeNode::Leaf { weight } => return *weight,
                TreeNode::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if row[*feature] < *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Leaf weights for every row of `x`.
    pub fn predict(&self, x: &Matrix) -> Vec<f64> {
        x.iter_rows().map(|row| self.predict_row(row)).collect()
    }

    /// Number of nodes (leaves + splits) — used to gauge model complexity.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Validate that every split's children are in-bounds and the node
    /// graph reachable from `root` is a tree (no index cycles), so a
    /// corrupted serialised tree fails loudly at deserialisation time
    /// instead of looping or panicking inside `predict_row`.
    fn validate(&self) -> Result<(), String> {
        if self.root >= self.nodes.len() {
            return Err(format!(
                "tree root {} out of bounds for {} nodes",
                self.root,
                self.nodes.len()
            ));
        }
        let mut visited = vec![false; self.nodes.len()];
        let mut stack = vec![self.root];
        while let Some(i) = stack.pop() {
            if visited[i] {
                return Err(format!("tree node {i} is reachable twice (cycle)"));
            }
            visited[i] = true;
            if let TreeNode::Split { left, right, .. } = &self.nodes[i] {
                for &child in [left, right] {
                    if child >= self.nodes.len() {
                        return Err(format!(
                            "tree child {child} out of bounds for {} nodes",
                            self.nodes.len()
                        ));
                    }
                    stack.push(child);
                }
            }
        }
        Ok(())
    }

    /// The largest feature index any split consults (`None` for a
    /// single-leaf tree). Deserialised ensembles check this against their
    /// declared feature count so a corrupted tree cannot index past a
    /// prediction row.
    pub fn max_feature_index(&self) -> Option<usize> {
        self.nodes
            .iter()
            .filter_map(|n| match n {
                TreeNode::Leaf { .. } => None,
                TreeNode::Split { feature, .. } => Some(*feature),
            })
            .max()
    }

    /// Depth of the deepest leaf.
    pub fn depth(&self) -> usize {
        fn rec(nodes: &[TreeNode], i: usize) -> usize {
            match &nodes[i] {
                TreeNode::Leaf { .. } => 0,
                TreeNode::Split { left, right, .. } => {
                    1 + rec(nodes, *left).max(rec(nodes, *right))
                }
            }
        }
        rec(&self.nodes, self.root)
    }
}

// Manual serde impls: `TreeNode` is an enum, beyond the derive shim. Leaves
// serialise as `{"weight": w}`, splits as
// `{"feature": j, "threshold": t, "left": l, "right": r}`; thresholds and
// weights round-trip bit-exactly, so a restored tree routes and scores every
// row identically.
impl serde::Serialize for TreeNode {
    fn to_value(&self) -> serde::Value {
        match self {
            TreeNode::Leaf { weight } => {
                serde::Value::Object(vec![("weight".into(), serde::Value::Number(*weight))])
            }
            TreeNode::Split {
                feature,
                threshold,
                left,
                right,
            } => serde::Value::Object(vec![
                ("feature".into(), serde::Value::Number(*feature as f64)),
                ("threshold".into(), serde::Value::Number(*threshold)),
                ("left".into(), serde::Value::Number(*left as f64)),
                ("right".into(), serde::Value::Number(*right as f64)),
            ]),
        }
    }
}

impl serde::Deserialize for TreeNode {
    fn from_value(v: &serde::Value) -> std::result::Result<Self, serde::Error> {
        if let Some(w) = v.get("weight") {
            return Ok(TreeNode::Leaf {
                weight: serde::Deserialize::from_value(w)?,
            });
        }
        Ok(TreeNode::Split {
            feature: serde::Deserialize::from_value(v.get_or_err("feature")?)?,
            threshold: serde::Deserialize::from_value(v.get_or_err("threshold")?)?,
            left: serde::Deserialize::from_value(v.get_or_err("left")?)?,
            right: serde::Deserialize::from_value(v.get_or_err("right")?)?,
        })
    }
}

impl serde::Serialize for RegressionTree {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("nodes".into(), self.nodes.to_value()),
            ("root".into(), serde::Value::Number(self.root as f64)),
        ])
    }
}

impl serde::Deserialize for RegressionTree {
    fn from_value(v: &serde::Value) -> std::result::Result<Self, serde::Error> {
        let tree = RegressionTree {
            nodes: serde::Deserialize::from_value(v.get_or_err("nodes")?)?,
            root: serde::Deserialize::from_value(v.get_or_err("root")?)?,
        };
        if tree.nodes.is_empty() {
            return Err(serde::Error::msg("a regression tree needs nodes"));
        }
        tree.validate().map_err(serde::Error::msg)?;
        Ok(tree)
    }
}

fn leaf_weight(g: f64, h: f64, lambda: f64) -> f64 {
    -g / (h + lambda)
}

fn build(
    x: &Matrix,
    grad: &[f64],
    hess: &[f64],
    rows: Vec<usize>,
    depth_left: usize,
    params: &TreeParams,
    nodes: &mut Vec<TreeNode>,
) -> usize {
    let g_total: f64 = rows.iter().map(|&i| grad[i]).sum();
    let h_total: f64 = rows.iter().map(|&i| hess[i]).sum();

    let make_leaf = |nodes: &mut Vec<TreeNode>| {
        nodes.push(TreeNode::Leaf {
            weight: leaf_weight(g_total, h_total, params.lambda),
        });
        nodes.len() - 1
    };

    if depth_left == 0 || rows.len() < 2 {
        return make_leaf(nodes);
    }

    // Exact greedy: scan every feature's sorted values for the best split.
    let parent_score = g_total * g_total / (h_total + params.lambda);
    let mut best: Option<(f64, usize, f64)> = None; // (gain, feature, threshold)
    let mut sorted: Vec<(f64, f64, f64)> = Vec::with_capacity(rows.len());
    for feature in 0..x.cols() {
        sorted.clear();
        sorted.extend(rows.iter().map(|&i| (x[(i, feature)], grad[i], hess[i])));
        sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("NaN feature value"));

        let mut g_left = 0.0;
        let mut h_left = 0.0;
        for k in 0..sorted.len() - 1 {
            g_left += sorted[k].1;
            h_left += sorted[k].2;
            // Can't split between equal values.
            if sorted[k].0 == sorted[k + 1].0 {
                continue;
            }
            let h_right = h_total - h_left;
            if h_left < params.min_child_weight || h_right < params.min_child_weight {
                continue;
            }
            let g_right = g_total - g_left;
            let gain = 0.5
                * (g_left * g_left / (h_left + params.lambda)
                    + g_right * g_right / (h_right + params.lambda)
                    - parent_score)
                - params.gamma;
            if gain > best.map_or(0.0, |b| b.0) {
                let threshold = 0.5 * (sorted[k].0 + sorted[k + 1].0);
                best = Some((gain, feature, threshold));
            }
        }
    }

    let Some((_, feature, threshold)) = best else {
        return make_leaf(nodes);
    };

    let (left_rows, right_rows): (Vec<usize>, Vec<usize>) =
        rows.into_iter().partition(|&i| x[(i, feature)] < threshold);
    debug_assert!(!left_rows.is_empty() && !right_rows.is_empty());

    let left = build(x, grad, hess, left_rows, depth_left - 1, params, nodes);
    let right = build(x, grad, hess, right_rows, depth_left - 1, params, nodes);
    nodes.push(TreeNode::Split {
        feature,
        threshold,
        left,
        right,
    });
    nodes.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Squared-error boosting reduction: g = pred − y with pred = 0, h = 1.
    fn regression_setup(xs: &[f64], ys: &[f64]) -> (Matrix, Vec<f64>, Vec<f64>) {
        let x = Matrix::from_rows(&xs.iter().map(|&v| vec![v]).collect::<Vec<_>>());
        let grad: Vec<f64> = ys.iter().map(|&y| -y).collect();
        let hess = vec![1.0; ys.len()];
        (x, grad, hess)
    }

    #[test]
    fn fits_a_step_function() {
        let xs = [0.0, 1.0, 2.0, 3.0, 10.0, 11.0, 12.0, 13.0];
        let ys = [0.0, 0.0, 0.0, 0.0, 4.0, 4.0, 4.0, 4.0];
        let (x, g, h) = regression_setup(&xs, &ys);
        let tree = RegressionTree::fit(
            &x,
            &g,
            &h,
            &TreeParams {
                lambda: 0.0,
                min_child_weight: 0.0,
                ..TreeParams::default()
            },
        );
        // Predictions approximate the two plateaus.
        for (i, &xv) in xs.iter().enumerate() {
            let p = tree.predict_row(&[xv]);
            assert!((p - ys[i]).abs() < 1e-9, "x={xv} p={p}");
        }
    }

    #[test]
    fn depth_zero_is_single_leaf() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys = [0.0, 0.0, 1.0, 1.0];
        let (x, g, h) = regression_setup(&xs, &ys);
        let tree = RegressionTree::fit(
            &x,
            &g,
            &h,
            &TreeParams {
                max_depth: 0,
                lambda: 0.0,
                ..TreeParams::default()
            },
        );
        assert_eq!(tree.node_count(), 1);
        assert_eq!(tree.depth(), 0);
        // Single leaf = mean of y (with λ=0, h=1 each): −(−2)/4 = 0.5.
        assert!((tree.predict_row(&[0.0]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn gamma_prunes_weak_splits() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys = [0.0, 0.1, 0.0, 0.1]; // nearly constant target
        let (x, g, h) = regression_setup(&xs, &ys);
        let no_gamma = RegressionTree::fit(
            &x,
            &g,
            &h,
            &TreeParams {
                gamma: 0.0,
                lambda: 0.0,
                min_child_weight: 0.0,
                ..TreeParams::default()
            },
        );
        let with_gamma = RegressionTree::fit(
            &x,
            &g,
            &h,
            &TreeParams {
                gamma: 10.0,
                lambda: 0.0,
                min_child_weight: 0.0,
                ..TreeParams::default()
            },
        );
        assert!(with_gamma.node_count() <= no_gamma.node_count());
        assert_eq!(with_gamma.node_count(), 1, "large gamma forces a stump");
    }

    #[test]
    fn min_child_weight_blocks_tiny_children() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys = [0.0, 0.0, 0.0, 5.0];
        let (x, g, h) = regression_setup(&xs, &ys);
        let tree = RegressionTree::fit(
            &x,
            &g,
            &h,
            &TreeParams {
                min_child_weight: 2.0, // each child needs ≥ 2 rows (h = 1 each)
                lambda: 0.0,
                ..TreeParams::default()
            },
        );
        // The only useful split (isolating x=3) would leave a child with
        // hessian 1 < 2, so it must be rejected: best remaining split is 2/2.
        let p0 = tree.predict_row(&[0.5]);
        let p3 = tree.predict_row(&[3.0]);
        assert!((p0 - 0.0).abs() < 1e-9);
        assert!((p3 - 2.5).abs() < 1e-9, "x≥2 leaf averages 0 and 5");
    }

    #[test]
    fn constant_features_yield_single_leaf() {
        let x = Matrix::from_rows(&[vec![1.0], vec![1.0], vec![1.0]]);
        let g = vec![-1.0, 0.0, 1.0];
        let h = vec![1.0; 3];
        let tree = RegressionTree::fit(&x, &g, &h, &TreeParams::default());
        assert_eq!(tree.node_count(), 1);
    }

    #[test]
    fn respects_max_depth() {
        let xs: Vec<f64> = (0..64).map(|i| i as f64).collect();
        let ys: Vec<f64> = (0..64).map(|i| (i % 2) as f64).collect();
        let (x, g, h) = regression_setup(&xs, &ys);
        let tree = RegressionTree::fit(
            &x,
            &g,
            &h,
            &TreeParams {
                max_depth: 3,
                lambda: 0.0,
                min_child_weight: 0.0,
                ..TreeParams::default()
            },
        );
        assert!(tree.depth() <= 3);
    }

    #[test]
    fn multi_feature_split_picks_informative_feature() {
        // Feature 0 is noise; feature 1 perfectly separates.
        let x = Matrix::from_rows(&[
            vec![0.3, 0.0],
            vec![0.9, 0.0],
            vec![0.1, 1.0],
            vec![0.7, 1.0],
        ]);
        let g = vec![0.0, 0.0, -1.0, -1.0];
        let h = vec![1.0; 4];
        let tree = RegressionTree::fit(
            &x,
            &g,
            &h,
            &TreeParams {
                max_depth: 1,
                lambda: 0.0,
                min_child_weight: 0.0,
                ..TreeParams::default()
            },
        );
        // Predict by feature 1 regardless of feature 0.
        assert!(tree.predict_row(&[0.5, 0.0]) < tree.predict_row(&[0.5, 1.0]));
    }
}
