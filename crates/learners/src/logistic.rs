//! Weighted logistic regression via damped Newton iterations (IRLS).
//!
//! The feature matrices in this workspace are min–max normalised to `[0, 1]`
//! (paper §IV preprocessing), which compresses informative directions and
//! makes first-order methods crawl; Newton steps are scale-invariant and
//! converge in a handful of iterations at these dimensionalities (d ≤ ~150).
//! A step-halving line search on the regularised loss keeps every iteration
//! monotone, so training is robust to the extreme instance weights the
//! fairness interventions produce. Deterministic (zero initialisation, fixed
//! schedule): repeated experiment runs differ only through the data seeds.

use crate::{validate_fit_inputs, LearnError, Learner, Result};
use cf_linalg::{cholesky, Matrix};

/// Hyperparameters for [`LogisticRegression`].
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LogisticRegressionConfig {
    /// Maximum number of Newton iterations.
    pub max_iter: usize,
    /// Stop when the loss improves by less than this between iterations.
    pub tol: f64,
    /// L2 regularisation strength on the non-intercept coefficients.
    pub l2: f64,
    /// Whether to fit an intercept term.
    pub fit_intercept: bool,
}

impl Default for LogisticRegressionConfig {
    fn default() -> Self {
        Self {
            max_iter: 50,
            tol: 1e-9,
            l2: 1e-4,
            fit_intercept: true,
        }
    }
}

/// Weighted binary logistic regression.
///
/// Serialisable: the fitted coefficients and intercept round-trip
/// bit-exactly through the JSON shim, so a deserialised model scores
/// identically to the original (the checkpoint/restore contract).
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct LogisticRegression {
    config: LogisticRegressionConfig,
    /// Learned coefficients (one per feature), empty until fitted.
    coefficients: Vec<f64>,
    /// Learned intercept.
    intercept: f64,
    fitted: bool,
}

impl Default for LogisticRegression {
    fn default() -> Self {
        Self::new(LogisticRegressionConfig::default())
    }
}

#[inline]
fn sigmoid(z: f64) -> f64 {
    // Split on sign for numerical stability at large |z|.
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

impl LogisticRegression {
    /// Create an unfitted model with the given hyperparameters.
    pub fn new(config: LogisticRegressionConfig) -> Self {
        Self {
            config,
            coefficients: Vec::new(),
            intercept: 0.0,
            fitted: false,
        }
    }

    /// Learned coefficients (empty before `fit`).
    pub fn coefficients(&self) -> &[f64] {
        &self.coefficients
    }

    /// Learned intercept.
    pub fn intercept(&self) -> f64 {
        self.intercept
    }

    /// Weighted regularised log-loss at the given parameters.
    fn loss(&self, x: &Matrix, y: &[f64], w: &[f64], beta: &[f64], b0: f64, wsum: f64) -> f64 {
        let mut nll = 0.0;
        for ((row, &yi), &wi) in x.iter_rows().zip(y).zip(w) {
            let z = cf_linalg::vector::dot(beta, row) + b0;
            // log(1 + e^{-z·sign}) written stably via log1p.
            let log_p = -((-z).exp().ln_1p()); // log σ(z)
            let log_1p = -(z.exp().ln_1p()); // log (1-σ(z))
            let (log_p, log_1p) = if z > 35.0 {
                (0.0, -z)
            } else if z < -35.0 {
                (z, 0.0)
            } else {
                (log_p, log_1p)
            };
            nll -= wi * (yi * log_p + (1.0 - yi) * log_1p);
        }
        let reg = 0.5 * self.config.l2 * cf_linalg::vector::dot(beta, beta);
        nll / wsum + reg
    }
}

impl Learner for LogisticRegression {
    fn fit(&mut self, x: &Matrix, y: &[f64], weights: Option<&[f64]>) -> Result<()> {
        let w = validate_fit_inputs(x, y, weights)?;
        let wsum: f64 = w.iter().sum();
        let d = x.cols();
        // Parameter layout: [β₀ … β_{d-1}, intercept].
        let dim = d + 1;
        let mut theta = vec![0.0; dim];
        let mut prev_loss = self.loss(x, y, &w, &theta[..d], theta[d], wsum);

        // Hessian floor keeps the Newton system well-posed even when the
        // model saturates (p ∈ {0, 1} makes p(1−p) vanish).
        const HESS_RIDGE: f64 = 1e-8;

        for _ in 0..self.config.max_iter {
            // Gradient and Hessian of the weighted mean log-loss.
            let mut grad = vec![0.0; dim];
            let mut hess = Matrix::zeros(dim, dim);
            for ((row, &yi), &wi) in x.iter_rows().zip(y).zip(&w) {
                let z = cf_linalg::vector::dot(&theta[..d], row) + theta[d];
                let p = sigmoid(z);
                let e = wi * (p - yi);
                cf_linalg::vector::axpy(e, row, &mut grad[..d]);
                grad[d] += e;
                let hw = (wi * p * (1.0 - p)).max(0.0);
                if hw == 0.0 {
                    continue;
                }
                // Upper triangle of hw · [row, 1][row, 1]ᵀ.
                for i in 0..d {
                    let hi = hw * row[i];
                    if hi == 0.0 {
                        continue;
                    }
                    let hrow = hess.row_mut(i);
                    for j in i..d {
                        hrow[j] += hi * row[j];
                    }
                    hrow[d] += hi;
                }
                hess[(d, d)] += hw;
            }
            for i in 0..d {
                grad[i] = grad[i] / wsum + self.config.l2 * theta[i];
            }
            grad[d] /= wsum;
            for i in 0..dim {
                for j in i..dim {
                    let v = hess[(i, j)] / wsum;
                    hess[(i, j)] = v;
                    hess[(j, i)] = v;
                }
            }
            for i in 0..d {
                hess[(i, i)] += self.config.l2;
            }
            hess[(d, d)] += HESS_RIDGE;
            for i in 0..dim {
                hess[(i, i)] += HESS_RIDGE;
            }

            let Ok(factor) = cholesky(&hess) else {
                break; // Degenerate curvature: keep the current parameters.
            };
            let Ok(step) = factor.solve(&grad) else {
                break;
            };

            // Step-halving line search keeps the loss monotone.
            let mut accepted = false;
            let mut scale = 1.0;
            for _ in 0..30 {
                let mut cand = theta.clone();
                for (c, s) in cand.iter_mut().zip(&step) {
                    *c -= scale * s;
                }
                if !self.config.fit_intercept {
                    cand[d] = 0.0;
                }
                let cand_loss = self.loss(x, y, &w, &cand[..d], cand[d], wsum);
                if cand_loss <= prev_loss {
                    let improvement = prev_loss - cand_loss;
                    theta = cand;
                    prev_loss = cand_loss;
                    accepted = true;
                    if improvement < self.config.tol {
                        self.coefficients = theta[..d].to_vec();
                        self.intercept = theta[d];
                        self.fitted = true;
                        return Ok(());
                    }
                    break;
                }
                scale *= 0.5;
            }
            if !accepted {
                break; // No descent direction left: converged.
            }
        }

        self.coefficients = theta[..d].to_vec();
        self.intercept = theta[d];
        self.fitted = true;
        Ok(())
    }

    fn predict_proba(&self, x: &Matrix) -> Result<Vec<f64>> {
        if !self.fitted {
            return Err(LearnError::NotFitted);
        }
        if x.cols() != self.coefficients.len() {
            return Err(LearnError::ShapeMismatch(format!(
                "{} features, model has {}",
                x.cols(),
                self.coefficients.len()
            )));
        }
        // The tiled kernel accumulates each row k-ascending with the
        // intercept added last — bit-identical to the per-row
        // `dot(coef, row) + intercept` it replaces, so scores (and the
        // golden-fixture artifacts downstream) are unchanged.
        Ok(x.affine_margins(&self.coefficients, self.intercept)
            .map_err(|e| LearnError::ShapeMismatch(e.to_string()))?
            .into_iter()
            .map(sigmoid)
            .collect())
    }

    fn predict(&self, x: &Matrix) -> Result<Vec<u8>> {
        if !self.fitted {
            return Err(LearnError::NotFitted);
        }
        if x.cols() != self.coefficients.len() {
            return Err(LearnError::ShapeMismatch(format!(
                "{} features, model has {}",
                x.cols(),
                self.coefficients.len()
            )));
        }
        // `sigmoid(z) >= 0.5` iff `z >= 0` (monotone, sigmoid(0) = 0.5),
        // so hard decisions never need the exp — the streaming hot path
        // thresholds the tiled linear scores directly. The sign of z is the
        // exact decision boundary; the proba path can only disagree for z
        // within one ulp of 0, where computing sigmoid rounds to exactly
        // 0.5.
        Ok(x.affine_margins(&self.coefficients, self.intercept)
            .map_err(|e| LearnError::ShapeMismatch(e.to_string()))?
            .into_iter()
            .map(|z| u8::from(z >= 0.0))
            .collect())
    }

    fn predict_margin(&self, x: &Matrix) -> Result<Vec<f64>> {
        if !self.fitted {
            return Err(LearnError::NotFitted);
        }
        if x.cols() != self.coefficients.len() {
            return Err(LearnError::ShapeMismatch(format!(
                "{} features, model has {}",
                x.cols(),
                self.coefficients.len()
            )));
        }
        // The same tiled linear scores `predict` thresholds at zero:
        // `margin >= τ` with τ = 0 reproduces `predict` bit for bit.
        x.affine_margins(&self.coefficients, self.intercept)
            .map_err(|e| LearnError::ShapeMismatch(e.to_string()))
    }

    fn is_fitted(&self) -> bool {
        self.fitted
    }

    fn state(&self) -> Option<crate::ModelState> {
        Some(crate::ModelState::Logistic(self.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accuracy;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    /// Linearly separable blobs around (0,0) and (2,2).
    fn blobs(n: usize, seed: u64) -> (Matrix, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::with_capacity(2 * n);
        let mut y = Vec::with_capacity(2 * n);
        for _ in 0..n {
            rows.push(vec![rng.gen_range(-0.5..0.5), rng.gen_range(-0.5..0.5)]);
            y.push(0.0);
            rows.push(vec![
                2.0 + rng.gen_range(-0.5..0.5),
                2.0 + rng.gen_range(-0.5..0.5),
            ]);
            y.push(1.0);
        }
        (Matrix::from_rows(&rows), y)
    }

    #[test]
    fn learns_separable_blobs() {
        let (x, y) = blobs(100, 1);
        let mut lr = LogisticRegression::default();
        lr.fit(&x, &y, None).unwrap();
        let pred = lr.predict(&x).unwrap();
        let truth: Vec<u8> = y.iter().map(|&v| v as u8).collect();
        assert!(accuracy(&truth, &pred) > 0.99);
    }

    #[test]
    fn probabilities_in_unit_interval() {
        let (x, y) = blobs(50, 2);
        let mut lr = LogisticRegression::default();
        lr.fit(&x, &y, None).unwrap();
        for p in lr.predict_proba(&x).unwrap() {
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn deterministic_across_fits() {
        let (x, y) = blobs(60, 3);
        let mut a = LogisticRegression::default();
        let mut b = LogisticRegression::default();
        a.fit(&x, &y, None).unwrap();
        b.fit(&x, &y, None).unwrap();
        assert_eq!(a.coefficients(), b.coefficients());
        assert_eq!(a.intercept(), b.intercept());
    }

    #[test]
    fn weights_equal_duplication() {
        // Weighting a tuple by 3 must match duplicating it 3 times.
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0], vec![3.0]]);
        let y = vec![0.0, 0.0, 1.0, 1.0];
        let w = vec![1.0, 3.0, 1.0, 1.0];

        let mut weighted = LogisticRegression::default();
        weighted.fit(&x, &y, Some(&w)).unwrap();

        let x_dup = Matrix::from_rows(&[
            vec![0.0],
            vec![1.0],
            vec![1.0],
            vec![1.0],
            vec![2.0],
            vec![3.0],
        ]);
        let y_dup = vec![0.0, 0.0, 0.0, 0.0, 1.0, 1.0];
        let mut duplicated = LogisticRegression::default();
        duplicated.fit(&x_dup, &y_dup, None).unwrap();

        for (a, b) in weighted
            .coefficients()
            .iter()
            .zip(duplicated.coefficients())
        {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
        assert!((weighted.intercept() - duplicated.intercept()).abs() < 1e-3);
    }

    #[test]
    fn upweighting_positives_raises_their_probability() {
        // Noisy overlap region: upweighting class-1 tuples should push the
        // decision surface toward predicting 1 more often.
        let (x, y) = blobs(40, 4);
        let mut plain = LogisticRegression::default();
        plain.fit(&x, &y, None).unwrap();
        let w: Vec<f64> = y
            .iter()
            .map(|&yi| if yi > 0.5 { 10.0 } else { 1.0 })
            .collect();
        let mut boosted = LogisticRegression::default();
        boosted.fit(&x, &y, Some(&w)).unwrap();
        let probe = Matrix::from_rows(&[vec![1.0, 1.0]]); // midpoint
        let p_plain = plain.predict_proba(&probe).unwrap()[0];
        let p_boost = boosted.predict_proba(&probe).unwrap()[0];
        assert!(p_boost > p_plain, "{p_boost} should exceed {p_plain}");
    }

    #[test]
    fn single_class_data_predicts_that_class() {
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0]]);
        let y = vec![1.0, 1.0, 1.0];
        let mut lr = LogisticRegression::default();
        lr.fit(&x, &y, None).unwrap();
        let p = lr.predict_proba(&x).unwrap();
        assert!(p.iter().all(|&v| v > 0.5));
    }

    #[test]
    fn unfitted_predict_errors() {
        let lr = LogisticRegression::default();
        assert!(matches!(
            lr.predict_proba(&Matrix::zeros(1, 1)),
            Err(LearnError::NotFitted)
        ));
    }

    #[test]
    fn feature_count_mismatch_errors() {
        let (x, y) = blobs(20, 5);
        let mut lr = LogisticRegression::default();
        lr.fit(&x, &y, None).unwrap();
        assert!(matches!(
            lr.predict_proba(&Matrix::zeros(1, 5)),
            Err(LearnError::ShapeMismatch(_))
        ));
    }

    #[test]
    fn no_intercept_config_respected() {
        let (x, y) = blobs(30, 6);
        let mut lr = LogisticRegression::new(LogisticRegressionConfig {
            fit_intercept: false,
            ..LogisticRegressionConfig::default()
        });
        lr.fit(&x, &y, None).unwrap();
        assert_eq!(lr.intercept(), 0.0);
    }
}
