//! XGBoost-style gradient boosted trees for binary classification.
//!
//! Second-order boosting with the logistic loss: per round, gradients
//! `g = w·(p − y)` and hessians `h = w·p(1−p)` feed an exact-greedy
//! regression tree; instance weights scale both, which makes weighting
//! equivalent to duplication — the property reweighing interventions need.

use crate::{
    tree::{FlatTree, RegressionTree, TreeParams},
    validate_fit_inputs, LearnError, Learner, Result,
};
use cf_linalg::Matrix;
use rand::{rngs::StdRng, seq::SliceRandom, SeedableRng};

/// Hyperparameters for [`Gbt`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GbtConfig {
    /// Number of boosting rounds.
    pub n_rounds: usize,
    /// Shrinkage `η` applied to every tree's contribution.
    pub eta: f64,
    /// Maximum depth per tree.
    pub max_depth: usize,
    /// L2 regularisation `λ` on leaf weights.
    pub lambda: f64,
    /// Minimum split gain `γ`.
    pub gamma: f64,
    /// Minimum hessian sum per child.
    pub min_child_weight: f64,
    /// Row subsampling fraction per round (1.0 = use every row).
    pub subsample: f64,
    /// Seed for subsampling (ignored when `subsample == 1.0`).
    pub seed: u64,
}

impl Default for GbtConfig {
    fn default() -> Self {
        Self {
            n_rounds: 60,
            eta: 0.3,
            max_depth: 4,
            lambda: 1.0,
            gamma: 0.0,
            min_child_weight: 1.0,
            subsample: 1.0,
            seed: 0,
        }
    }
}

// Manual serde impls: `seed` is a full-range `u64`, which the JSON shim's
// f64-backed numbers cannot carry exactly above 2^53 — it travels as a hex
// string instead, so subsampled retrains replay bit-identically after a
// restore.
impl serde::Serialize for GbtConfig {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("n_rounds".into(), self.n_rounds.to_value()),
            ("eta".into(), self.eta.to_value()),
            ("max_depth".into(), self.max_depth.to_value()),
            ("lambda".into(), self.lambda.to_value()),
            ("gamma".into(), self.gamma.to_value()),
            ("min_child_weight".into(), self.min_child_weight.to_value()),
            ("subsample".into(), self.subsample.to_value()),
            (
                "seed".into(),
                serde::Value::String(format!("{:016x}", self.seed)),
            ),
        ])
    }
}

impl serde::Deserialize for GbtConfig {
    fn from_value(v: &serde::Value) -> std::result::Result<Self, serde::Error> {
        use serde::Deserialize;
        let seed_hex = v
            .get_or_err("seed")?
            .as_str()
            .ok_or_else(|| serde::Error::msg("gbt seed must be a hex string"))?;
        let seed = u64::from_str_radix(seed_hex, 16)
            .map_err(|e| serde::Error::msg(format!("bad gbt seed `{seed_hex}`: {e}")))?;
        let config = GbtConfig {
            n_rounds: Deserialize::from_value(v.get_or_err("n_rounds")?)?,
            eta: Deserialize::from_value(v.get_or_err("eta")?)?,
            max_depth: Deserialize::from_value(v.get_or_err("max_depth")?)?,
            lambda: Deserialize::from_value(v.get_or_err("lambda")?)?,
            gamma: Deserialize::from_value(v.get_or_err("gamma")?)?,
            min_child_weight: Deserialize::from_value(v.get_or_err("min_child_weight")?)?,
            subsample: Deserialize::from_value(v.get_or_err("subsample")?)?,
            seed,
        };
        if !(config.subsample > 0.0 && config.subsample <= 1.0) {
            return Err(serde::Error::msg("subsample must be in (0, 1]"));
        }
        Ok(config)
    }
}

/// Gradient-boosted-tree binary classifier.
///
/// Serialisable: the fitted ensemble (every tree's splits and leaf weights,
/// plus the base score) round-trips bit-exactly through the JSON shim, so a
/// deserialised model scores identically to the original.
#[derive(Debug, Clone)]
pub struct Gbt {
    config: GbtConfig,
    trees: Vec<RegressionTree>,
    /// Initial log-odds (from the weighted base rate).
    base_score: f64,
    n_features: usize,
    fitted: bool,
    /// The fitted trees compiled to SoA form for the batch scoring kernel.
    /// Derived state: rebuilt at fit/deserialise time, never serialised.
    flat: Vec<FlatTree>,
}

impl Default for Gbt {
    fn default() -> Self {
        Self::new(GbtConfig::default())
    }
}

// Manual Serialize: the derive shim would emit every field, and `flat` is
// derived state — the wire format must stay the v4 node-enum tree document
// (exactly config/trees/base_score/n_features/fitted), so checkpoints
// written before the flat kernel existed restore unchanged and new
// checkpoints never persist the SoA form.
impl serde::Serialize for Gbt {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("config".into(), self.config.to_value()),
            ("trees".into(), self.trees.to_value()),
            ("base_score".into(), self.base_score.to_value()),
            ("n_features".into(), self.n_features.to_value()),
            ("fitted".into(), self.fitted.to_value()),
        ])
    }
}

// Manual Deserialize: fields alone don't make a valid ensemble — every
// tree's split feature indices must stay inside the declared feature
// count, or a corrupted checkpoint would pass parsing and then panic with
// index-out-of-bounds inside `predict_row` at serve time. The flat kernel
// form is compiled here, after validation — old documents flatten on load.
impl serde::Deserialize for Gbt {
    fn from_value(v: &serde::Value) -> std::result::Result<Self, serde::Error> {
        use serde::Deserialize;
        let mut gbt = Gbt {
            config: Deserialize::from_value(v.get_or_err("config")?)?,
            trees: Deserialize::from_value(v.get_or_err("trees")?)?,
            base_score: Deserialize::from_value(v.get_or_err("base_score")?)?,
            n_features: Deserialize::from_value(v.get_or_err("n_features")?)?,
            fitted: Deserialize::from_value(v.get_or_err("fitted")?)?,
            flat: Vec::new(),
        };
        for (i, tree) in gbt.trees.iter().enumerate() {
            if let Some(f) = tree.max_feature_index() {
                if f >= gbt.n_features {
                    return Err(serde::Error::msg(format!(
                        "tree {i} splits on feature {f}; the model has {} features",
                        gbt.n_features
                    )));
                }
            }
        }
        gbt.rebuild_flat();
        Ok(gbt)
    }
}

#[inline]
fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

impl Gbt {
    /// Create an unfitted model with the given hyperparameters.
    pub fn new(config: GbtConfig) -> Self {
        assert!(
            config.subsample > 0.0 && config.subsample <= 1.0,
            "subsample must be in (0, 1]"
        );
        Self {
            config,
            trees: Vec::new(),
            base_score: 0.0,
            n_features: 0,
            fitted: false,
            flat: Vec::new(),
        }
    }

    /// Number of fitted trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Number of features the ensemble was fitted on (0 before `fit`).
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Recompile the SoA kernel form from the recursive trees.
    fn rebuild_flat(&mut self) {
        self.flat = self.trees.iter().map(RegressionTree::flatten).collect();
    }

    /// Raw margin (log-odds) for one row, via the recursive walker.
    ///
    /// Accumulated as one left-to-right fold (`base`, then each tree's
    /// shrunk contribution in boosting order) — the exact association the
    /// batch kernel uses per row, so [`Self::predict_margin_rows`] and this
    /// reference path are bit-identical, not merely close.
    fn margin(&self, row: &[f64]) -> f64 {
        let mut m = self.base_score;
        for tree in &self.trees {
            m += self.config.eta * tree.predict_row(row);
        }
        m
    }

    fn check_scorable(&self, x: &Matrix) -> Result<()> {
        if !self.fitted {
            return Err(LearnError::NotFitted);
        }
        if x.cols() != self.n_features {
            return Err(LearnError::ShapeMismatch(format!(
                "{} features, model has {}",
                x.cols(),
                self.n_features
            )));
        }
        Ok(())
    }

    /// Raw margins (log-odds) for every row of `x`, via the flat batch
    /// kernel: the margin buffer is initialised to the base score, then
    /// each compiled tree sweeps a whole block of rows before the next
    /// tree starts — one tree's node arrays stay L1-resident while rows
    /// stream, instead of every row chasing pointers through every tree.
    ///
    /// Rows are tiled into ~L1-sized blocks before the tree-outer loop:
    /// sweeping *all* rows per tree would re-stream the full feature
    /// block from memory once per tree (an ensemble-sized multiplier on
    /// memory traffic), while an L1-sized block is re-read from cache by
    /// every tree after the first.
    pub fn predict_margin_rows(&self, x: &Matrix) -> Result<Vec<f64>> {
        self.check_scorable(x)?;
        let mut margins = vec![self.base_score; x.rows()];
        let d = x.cols();
        let data = x.as_slice();
        // ~16 KiB of row data per block — half of a typical 32 KiB L1d,
        // leaving the other half for the tree being swept and the margin
        // slice (measured faster than a 32 KiB block, which makes rows
        // and nodes fight over the cache) — but never fewer rows than the
        // kernel keeps in flight.
        let block = (16 * 1024 / (d * std::mem::size_of::<f64>()).max(1)).max(8);
        let mut start = 0;
        while start < x.rows() {
            let end = (start + block).min(x.rows());
            let rows = &data[start * d..end * d];
            let out = &mut margins[start..end];
            for tree in &self.flat {
                tree.accumulate_margins(rows, d, self.config.eta, out);
            }
            start = end;
        }
        Ok(margins)
    }

    /// Reference margins via the recursive per-row walker. Kept (and
    /// property-pinned bit-identical to [`Self::predict_margin_rows`]) as
    /// the readable specification of what the kernel computes.
    pub fn predict_margin_rows_recursive(&self, x: &Matrix) -> Result<Vec<f64>> {
        self.check_scorable(x)?;
        Ok(x.iter_rows().map(|row| self.margin(row)).collect())
    }
}

impl Learner for Gbt {
    fn fit(&mut self, x: &Matrix, y: &[f64], weights: Option<&[f64]>) -> Result<()> {
        let w = validate_fit_inputs(x, y, weights)?;
        let n = x.rows();
        self.n_features = x.cols();
        self.trees.clear();

        // Base score: weighted positive rate as log-odds, clamped away from
        // the degenerate endpoints so single-class data stays finite.
        let wsum: f64 = w.iter().sum();
        let pos_rate = (y.iter().zip(&w).map(|(&yi, &wi)| yi * wi).sum::<f64>() / wsum)
            .clamp(1e-6, 1.0 - 1e-6);
        self.base_score = (pos_rate / (1.0 - pos_rate)).ln();

        let tree_params = TreeParams {
            max_depth: self.config.max_depth,
            lambda: self.config.lambda,
            gamma: self.config.gamma,
            min_child_weight: self.config.min_child_weight,
        };

        let mut margins = vec![self.base_score; n];
        let mut grad = vec![0.0; n];
        let mut hess = vec![0.0; n];
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut row_pool: Vec<usize> = (0..n).collect();

        for _ in 0..self.config.n_rounds {
            for i in 0..n {
                let p = sigmoid(margins[i]);
                grad[i] = w[i] * (p - y[i]);
                hess[i] = (w[i] * p * (1.0 - p)).max(1e-16);
            }

            let tree = if self.config.subsample < 1.0 {
                // Zero out the gradients of dropped rows instead of gathering
                // a sub-matrix: the tree then ignores them (g = h·ε ≈ 0) and
                // prediction indices stay aligned.
                row_pool.shuffle(&mut rng);
                let kept = ((n as f64) * self.config.subsample).ceil() as usize;
                let mut g2 = vec![0.0; n];
                let mut h2 = vec![1e-16; n];
                for &i in &row_pool[..kept] {
                    g2[i] = grad[i];
                    h2[i] = hess[i];
                }
                RegressionTree::fit(x, &g2, &h2, &tree_params)
            } else {
                RegressionTree::fit(x, &grad, &hess, &tree_params)
            };

            // Early stop: a single-leaf tree with ~zero weight adds nothing.
            let deltas = tree.predict(x);
            let max_delta = deltas.iter().fold(0.0_f64, |m, &d| m.max(d.abs()));
            if max_delta < 1e-12 {
                break;
            }
            for (m, d) in margins.iter_mut().zip(&deltas) {
                *m += self.config.eta * d;
            }
            self.trees.push(tree);
        }

        self.fitted = true;
        self.rebuild_flat();
        Ok(())
    }

    fn predict_proba(&self, x: &Matrix) -> Result<Vec<f64>> {
        Ok(self
            .predict_margin_rows(x)?
            .into_iter()
            .map(sigmoid)
            .collect())
    }

    fn predict(&self, x: &Matrix) -> Result<Vec<u8>> {
        // `sigmoid(z) >= 0.5` iff `z >= 0`: hard decisions threshold the
        // raw boosting margin and skip the per-tuple exp. The margin sign
        // is the exact decision boundary — at a margin of exactly 0 the
        // proba path lands on exactly 0.5 and both report the positive
        // class, so `predict == (proba >= 0.5)` everywhere.
        Ok(self
            .predict_margin_rows(x)?
            .into_iter()
            .map(|m| u8::from(m >= 0.0))
            .collect())
    }

    fn predict_margin(&self, x: &Matrix) -> Result<Vec<f64>> {
        // The flat batch kernel `predict` thresholds at zero: `margin >= τ`
        // with τ = 0 reproduces `predict` bit for bit.
        self.predict_margin_rows(x)
    }

    fn is_fitted(&self) -> bool {
        self.fitted
    }

    fn state(&self) -> Option<crate::ModelState> {
        Some(crate::ModelState::Gbt(self.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accuracy;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    /// XOR-patterned data — not linearly separable, needs depth ≥ 2.
    fn xor_data(n: usize, seed: u64) -> (Matrix, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        for _ in 0..n {
            let a = rng.gen_range(0.0..1.0);
            let b = rng.gen_range(0.0..1.0);
            rows.push(vec![a, b]);
            y.push(f64::from(u8::from((a > 0.5) != (b > 0.5))));
        }
        (Matrix::from_rows(&rows), y)
    }

    #[test]
    fn learns_xor() {
        let (x, y) = xor_data(400, 1);
        let mut gbt = Gbt::default();
        gbt.fit(&x, &y, None).unwrap();
        let pred = gbt.predict(&x).unwrap();
        let truth: Vec<u8> = y.iter().map(|&v| v as u8).collect();
        assert!(
            accuracy(&truth, &pred) > 0.95,
            "accuracy {}",
            accuracy(&truth, &pred)
        );
    }

    #[test]
    fn probabilities_valid() {
        let (x, y) = xor_data(100, 2);
        let mut gbt = Gbt::default();
        gbt.fit(&x, &y, None).unwrap();
        for p in gbt.predict_proba(&x).unwrap() {
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn deterministic_with_fixed_seed() {
        let (x, y) = xor_data(150, 3);
        let cfg = GbtConfig {
            subsample: 0.8,
            seed: 42,
            ..GbtConfig::default()
        };
        let mut a = Gbt::new(cfg);
        let mut b = Gbt::new(cfg);
        a.fit(&x, &y, None).unwrap();
        b.fit(&x, &y, None).unwrap();
        assert_eq!(a.predict_proba(&x).unwrap(), b.predict_proba(&x).unwrap());
    }

    #[test]
    fn weights_equal_duplication() {
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0], vec![3.0]]);
        let y = vec![0.0, 0.0, 1.0, 1.0];
        let w = vec![1.0, 2.0, 1.0, 1.0];
        let cfg = GbtConfig {
            n_rounds: 10,
            ..GbtConfig::default()
        };
        let mut weighted = Gbt::new(cfg);
        weighted.fit(&x, &y, Some(&w)).unwrap();

        let x_dup = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![1.0], vec![2.0], vec![3.0]]);
        let y_dup = vec![0.0, 0.0, 0.0, 1.0, 1.0];
        let mut duplicated = Gbt::new(cfg);
        duplicated.fit(&x_dup, &y_dup, None).unwrap();

        let probe = Matrix::from_rows(&[vec![0.5], vec![1.5], vec![2.5]]);
        let pw = weighted.predict_proba(&probe).unwrap();
        let pd = duplicated.predict_proba(&probe).unwrap();
        for (a, b) in pw.iter().zip(&pd) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn single_class_data_is_finite_and_confident() {
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0]]);
        let y = vec![0.0, 0.0];
        let mut gbt = Gbt::default();
        gbt.fit(&x, &y, None).unwrap();
        let p = gbt.predict_proba(&x).unwrap();
        assert!(p.iter().all(|v| v.is_finite() && *v < 0.5));
    }

    #[test]
    fn upweighting_flips_mixed_region() {
        // Identical feature values with conflicting labels: the majority
        // (by weight) label must win.
        let x = Matrix::from_rows(&[vec![1.0], vec![1.0], vec![1.0]]);
        let y = vec![0.0, 0.0, 1.0];
        let mut plain = Gbt::default();
        plain.fit(&x, &y, None).unwrap();
        assert!(plain.predict_proba(&x).unwrap()[0] < 0.5);

        let mut boosted = Gbt::default();
        boosted.fit(&x, &y, Some(&[1.0, 1.0, 10.0])).unwrap();
        assert!(boosted.predict_proba(&x).unwrap()[0] > 0.5);
    }

    #[test]
    fn unfitted_errors() {
        let gbt = Gbt::default();
        assert!(matches!(
            gbt.predict_proba(&Matrix::zeros(1, 1)),
            Err(LearnError::NotFitted)
        ));
    }

    #[test]
    fn shape_mismatch_errors() {
        let (x, y) = xor_data(50, 4);
        let mut gbt = Gbt::default();
        gbt.fit(&x, &y, None).unwrap();
        assert!(matches!(
            gbt.predict_proba(&Matrix::zeros(1, 7)),
            Err(LearnError::ShapeMismatch(_))
        ));
    }

    #[test]
    fn subsampling_still_learns() {
        let (x, y) = xor_data(400, 5);
        let mut gbt = Gbt::new(GbtConfig {
            subsample: 0.7,
            seed: 9,
            ..GbtConfig::default()
        });
        gbt.fit(&x, &y, None).unwrap();
        let truth: Vec<u8> = y.iter().map(|&v| v as u8).collect();
        assert!(accuracy(&truth, &gbt.predict(&x).unwrap()) > 0.9);
    }

    #[test]
    fn flat_kernel_margins_match_recursive_reference() {
        let (x, y) = xor_data(300, 7);
        let mut gbt = Gbt::default();
        gbt.fit(&x, &y, None).unwrap();
        let fast = gbt.predict_margin_rows(&x).unwrap();
        let slow = gbt.predict_margin_rows_recursive(&x).unwrap();
        for (f, s) in fast.iter().zip(&slow) {
            assert_eq!(f.to_bits(), s.to_bits());
        }
        // Odd row counts exercise the remainder lanes (rows % 4 ∈ 1..4).
        for take in [1, 2, 3, 5] {
            let sub = x.select_rows(&(0..take).collect::<Vec<_>>());
            let fast = gbt.predict_margin_rows(&sub).unwrap();
            let slow = gbt.predict_margin_rows_recursive(&sub).unwrap();
            assert_eq!(
                fast.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                slow.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn predict_agrees_with_thresholded_proba_at_the_boundary() {
        // An empty ensemble's margin is exactly `base_score`, which lets
        // the boundary be probed with exact values. Wherever sigmoid can
        // represent the deviation from ½ (any margin of magnitude ≳ one
        // ulp of 0.5), hard decisions agree with thresholding the
        // probability — by `> 0.5` and `>= 0.5` alike.
        let probe = |base: f64| {
            let gbt = Gbt {
                base_score: base,
                n_features: 1,
                fitted: true,
                ..Gbt::default()
            };
            let x = Matrix::zeros(1, 1);
            (
                gbt.predict(&x).unwrap()[0],
                gbt.predict_proba(&x).unwrap()[0],
            )
        };
        for base in [1.0, 1e-12, -1e-12, -1.0] {
            let (hard, proba) = probe(base);
            assert_eq!(hard, u8::from(proba > 0.5), "base_score={base}");
            assert_eq!(hard, u8::from(proba >= 0.5), "base_score={base}");
        }
        // On the boundary itself the margin sign is authoritative: a
        // margin of exactly 0 is the positive class and the probability is
        // exactly 0.5 (so thresholding with `>= 0.5` agrees; strict `>`
        // would flip precisely this one point).
        assert_eq!(probe(0.0), (1, 0.5));
        // And one ulp *below* zero, sigmoid underflows back onto exactly
        // 0.5 — the probability can no longer express the sign, which is
        // why `predict` thresholds the raw margin rather than the proba.
        let (hard, proba) = probe(-f64::MIN_POSITIVE);
        assert_eq!((hard, proba), (0, 0.5));
    }

    #[test]
    fn more_rounds_do_not_hurt_training_fit() {
        let (x, y) = xor_data(200, 6);
        let truth: Vec<u8> = y.iter().map(|&v| v as u8).collect();
        let mut short = Gbt::new(GbtConfig {
            n_rounds: 5,
            ..GbtConfig::default()
        });
        short.fit(&x, &y, None).unwrap();
        let mut long = Gbt::new(GbtConfig {
            n_rounds: 80,
            ..GbtConfig::default()
        });
        long.fit(&x, &y, None).unwrap();
        let acc_short = accuracy(&truth, &short.predict(&x).unwrap());
        let acc_long = accuracy(&truth, &long.predict(&x).unwrap());
        assert!(acc_long >= acc_short - 1e-9);
    }
}
