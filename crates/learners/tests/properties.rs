//! Property tests for the learner substrate.

use cf_learners::{Gbt, GbtConfig, Learner, LogisticRegression};
use cf_linalg::Matrix;
use proptest::prelude::*;

/// Strategy: a training problem plus an independent scoring block over the
/// same feature width, with a sprinkling of NaN feature values in the
/// scoring rows (NaNs never reach `fit` — its split search sorts — but the
/// scoring kernels must route them identically to the recursive walker:
/// `<` is false, so NaN always goes right). Row counts 1..=39 sweep both
/// sides of the batch kernel's 16-cursor chain groups (0, 1, and 2 full
/// groups plus every remainder size, which also covers each matmul tile
/// remainder lane rows % 4 ∈ {0,1,2,3}), and `max_depth` 0 covers forests
/// of single-leaf trees (a one-slot heap in the flat form).
#[allow(clippy::type_complexity)]
fn forest_problem() -> impl Strategy<Value = (Matrix, Vec<f64>, Matrix, usize)> {
    (4usize..24, 1usize..4, 1usize..40, 0usize..4).prop_flat_map(|(n, d, rows, max_depth)| {
        (
            proptest::collection::vec(-10.0..10.0f64, n * d),
            proptest::collection::vec(0u8..2, n),
            proptest::collection::vec(-10.0..10.0f64, rows * d),
            proptest::collection::vec(0u8..10, rows * d),
        )
            .prop_map(move |(data, mut labels, mut block, nan_mask)| {
                labels[0] = 0;
                labels[n - 1] = 1;
                for (value, mask) in block.iter_mut().zip(&nan_mask) {
                    if *mask == 0 {
                        *value = f64::NAN;
                    }
                }
                (
                    Matrix::from_vec(n, d, data),
                    labels.into_iter().map(f64::from).collect(),
                    Matrix::from_vec(rows, d, block),
                    max_depth,
                )
            })
    })
}

/// Strategy: a small binary-classification problem with at least one tuple
/// of each class.
fn problem() -> impl Strategy<Value = (Matrix, Vec<f64>)> {
    (4usize..40, 1usize..4).prop_flat_map(|(n, d)| {
        (
            proptest::collection::vec(-10.0..10.0f64, n * d),
            proptest::collection::vec(0u8..2, n),
        )
            .prop_map(move |(data, mut labels)| {
                // Force both classes to be present.
                labels[0] = 0;
                labels[n - 1] = 1;
                (
                    Matrix::from_vec(n, d, data),
                    labels.into_iter().map(f64::from).collect(),
                )
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn lr_probabilities_in_unit_interval((x, y) in problem()) {
        let mut m = LogisticRegression::default();
        m.fit(&x, &y, None).unwrap();
        for p in m.predict_proba(&x).unwrap() {
            prop_assert!((0.0..=1.0).contains(&p) && p.is_finite());
        }
    }

    #[test]
    fn gbt_probabilities_in_unit_interval((x, y) in problem()) {
        let mut m = Gbt::new(GbtConfig { n_rounds: 8, ..GbtConfig::default() });
        m.fit(&x, &y, None).unwrap();
        for p in m.predict_proba(&x).unwrap() {
            prop_assert!((0.0..=1.0).contains(&p) && p.is_finite());
        }
    }

    #[test]
    fn hard_predict_matches_thresholded_probabilities((x, y) in problem()) {
        // Both learners override `predict` to threshold the raw margin
        // (skipping the sigmoid); away from the knife edge, the override
        // must agree with thresholding `predict_proba` at 0.5. A
        // probability of exactly 0.5 is excluded: there the sigmoid has
        // rounded a within-one-ulp-of-zero margin, and the margin's sign —
        // the exact boundary — is authoritative.
        let mut lr = LogisticRegression::default();
        lr.fit(&x, &y, None).unwrap();
        let mut gbt = Gbt::default();
        gbt.fit(&x, &y, None).unwrap();
        for model in [&lr as &dyn Learner, &gbt as &dyn Learner] {
            let probas = model.predict_proba(&x).unwrap();
            let hard = model.predict(&x).unwrap();
            for (&p, &d) in probas.iter().zip(&hard) {
                if p != 0.5 {
                    prop_assert_eq!(u8::from(p >= 0.5), d, "proba {} vs decision {}", p, d);
                }
            }
        }
    }

    #[test]
    fn lr_deterministic((x, y) in problem()) {
        let mut a = LogisticRegression::default();
        let mut b = LogisticRegression::default();
        a.fit(&x, &y, None).unwrap();
        b.fit(&x, &y, None).unwrap();
        prop_assert_eq!(a.predict_proba(&x).unwrap(), b.predict_proba(&x).unwrap());
    }

    #[test]
    fn uniform_weights_match_unweighted((x, y) in problem(), scale in 0.5..4.0f64) {
        // Scaling every weight by the same constant must not change the fit
        // (the loss is weight-normalised).
        let w = vec![scale; x.rows()];
        let mut plain = LogisticRegression::default();
        plain.fit(&x, &y, None).unwrap();
        let mut scaled = LogisticRegression::default();
        scaled.fit(&x, &y, Some(&w)).unwrap();
        for (a, b) in plain
            .predict_proba(&x)
            .unwrap()
            .iter()
            .zip(scaled.predict_proba(&x).unwrap())
        {
            prop_assert!((a - b).abs() < 1e-6, "{} vs {}", a, b);
        }
    }

    #[test]
    fn zero_weight_tuples_are_ignored((x, y) in problem()) {
        prop_assume!(x.rows() >= 6);
        // Fit on all rows with the last two zero-weighted ⇔ fit on the prefix,
        // provided both classes survive in the prefix.
        let keep = x.rows() - 2;
        let prefix_labels = &y[..keep];
        prop_assume!(prefix_labels.iter().any(|&v| v > 0.5));
        prop_assume!(prefix_labels.iter().any(|&v| v < 0.5));
        let mut w = vec![1.0; x.rows()];
        w[keep] = 0.0;
        w[keep + 1] = 0.0;
        let mut masked = LogisticRegression::default();
        masked.fit(&x, &y, Some(&w)).unwrap();

        let rows: Vec<usize> = (0..keep).collect();
        let x_prefix = x.select_rows(&rows);
        let mut prefix = LogisticRegression::default();
        prefix.fit(&x_prefix, prefix_labels, None).unwrap();

        for (a, b) in masked
            .coefficients()
            .iter()
            .zip(prefix.coefficients())
        {
            prop_assert!((a - b).abs() < 1e-5, "{} vs {}", a, b);
        }
    }

    #[test]
    fn flat_gbt_equivalence((x, y, block, max_depth) in forest_problem()) {
        // The flattened batch traversal is the serving kernel; the
        // recursive walker is the specification. They must agree to the
        // bit — same routing on every row (including NaN features sent
        // right) and the same left-to-right margin accumulation — on
        // random fitted forests scored over random row blocks.
        let mut m = Gbt::new(GbtConfig { n_rounds: 8, max_depth, ..GbtConfig::default() });
        m.fit(&x, &y, None).unwrap();
        let fast = m.predict_margin_rows(&block).unwrap();
        let slow = m.predict_margin_rows_recursive(&block).unwrap();
        prop_assert_eq!(fast.len(), slow.len());
        for (i, (f, s)) in fast.iter().zip(&slow).enumerate() {
            prop_assert_eq!(f.to_bits(), s.to_bits(), "row {}: {} vs {}", i, f, s);
        }
    }

    #[test]
    fn gbt_training_fit_is_reasonable((x, y) in problem()) {
        // GBT with enough rounds should fit most of its own training data
        // whenever the features are all-distinct (no conflicting labels).
        let mut m = Gbt::new(GbtConfig { n_rounds: 40, lambda: 0.1, min_child_weight: 0.0, ..GbtConfig::default() });
        m.fit(&x, &y, None).unwrap();
        let preds = m.predict(&x).unwrap();
        let truth: Vec<u8> = y.iter().map(|&v| v as u8).collect();
        // Only assert when all rows are distinct (otherwise Bayes error > 0).
        let mut rows: Vec<&[f64]> = x.iter_rows().collect();
        rows.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let distinct = rows.windows(2).all(|w| w[0] != w[1]);
        if distinct {
            let acc = cf_learners::accuracy(&truth, &preds);
            prop_assert!(acc > 0.8, "training accuracy {}", acc);
        }
    }
}
