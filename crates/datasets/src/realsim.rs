//! Seeded simulators for the seven real-world benchmarks (paper Fig. 4).
//!
//! The originals (MEPS, LSAC, Credit, four ACS tasks) are licensed microdata
//! that cannot ship with this repository, so each is replaced by a generator
//! matched to the statistics the paper reports — size, numeric/categorical
//! attribute counts, minority fraction, minority positive-label rate — plus
//! the structural properties the evaluation actually exercises:
//!
//! * **drift over groups**: the minority's label-conditional feature
//!   distributions are rotated/offset against the majority's;
//! * **dense cores + outlier mass**: every (group, label) cell is an 80/20
//!   mixture of a tight correlated-Gaussian core and a diffuse component
//!   centred near the *opposite-label* region — the noise that uniform
//!   reweighing amplifies and conformance gating avoids;
//! * **label and population skew** matching Fig. 4.
//!
//! See DESIGN.md §1 for the substitution argument.

use cf_data::{Column, Dataset};
use cf_linalg::{cholesky, Matrix};
use rand::{rngs::StdRng, seq::SliceRandom, Rng, SeedableRng};

use crate::normal_vec;

/// Full specification of one simulated benchmark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RealWorldSpec {
    /// Dataset name as it appears in the paper's figures.
    pub name: &'static str,
    /// Paper-reported row count.
    pub n: usize,
    /// Number of numeric attributes (Fig. 4).
    pub numeric_attrs: usize,
    /// Number of categorical attributes (Fig. 4).
    pub categorical_attrs: usize,
    /// `|U| / |D|` (Fig. 4 "population of U").
    pub minority_fraction: f64,
    /// Positive-label rate within the minority (Fig. 4).
    pub minority_pos_rate: f64,
    /// Positive-label rate within the majority (not in Fig. 4; chosen so the
    /// no-intervention model lands in the biased regime the paper reports).
    pub majority_pos_rate: f64,
    /// Rotation (degrees) between the groups' label directions.
    pub drift_angle_deg: f64,
    /// Covariate shift: distance between the groups' overall centres.
    pub group_offset: f64,
    /// Distance between class centres within a group.
    pub class_sep: f64,
    /// Core cluster standard deviation.
    pub cluster_std: f64,
    /// Fraction of each cell drawn from the diffuse outlier component.
    pub outlier_fraction: f64,
    /// Outlier component scale multiplier.
    pub outlier_scale: f64,
    /// Fraction of labels flipped uniformly at random.
    pub label_noise: f64,
    /// Mixed into the caller's seed so datasets differ even at equal seeds.
    pub base_seed: u64,
    /// Minority group description (Fig. 4).
    pub minority_name: &'static str,
    /// Predictive task description (Fig. 4).
    pub task: &'static str,
}

impl RealWorldSpec {
    /// All seven benchmarks in the paper's column order.
    pub fn all() -> [RealWorldSpec; 7] {
        [
            RealWorldSpec {
                name: "MEPS",
                n: 15_675,
                numeric_attrs: 6,
                categorical_attrs: 34,
                minority_fraction: 0.616,
                minority_pos_rate: 0.114,
                majority_pos_rate: 0.27,
                drift_angle_deg: 95.0,
                group_offset: 0.7,
                class_sep: 1.9,
                cluster_std: 0.65,
                outlier_fraction: 0.15,
                outlier_scale: 2.5,
                label_noise: 0.02,
                base_seed: 0x4D45_5053,
                minority_name: "non-White",
                task: "high hospital utilization",
            },
            RealWorldSpec {
                name: "LSAC",
                n: 24_479,
                numeric_attrs: 6,
                categorical_attrs: 4,
                minority_fraction: 0.077,
                minority_pos_rate: 0.566,
                majority_pos_rate: 0.86,
                drift_angle_deg: 110.0,
                group_offset: 1.4,
                class_sep: 2.1,
                cluster_std: 0.6,
                outlier_fraction: 0.15,
                outlier_scale: 2.5,
                label_noise: 0.02,
                base_seed: 0x4C53_4143,
                minority_name: "African-American",
                task: "passing bar exam",
            },
            RealWorldSpec {
                name: "Credit",
                n: 120_269,
                numeric_attrs: 6,
                categorical_attrs: 0,
                minority_fraction: 0.137,
                minority_pos_rate: 0.107,
                majority_pos_rate: 0.055,
                drift_angle_deg: 120.0,
                group_offset: 0.6,
                class_sep: 3.2,
                cluster_std: 0.55,
                outlier_fraction: 0.08,
                outlier_scale: 2.5,
                label_noise: 0.01,
                base_seed: 0x4352_4544,
                minority_name: "age<35",
                task: "serious delay in 2 years",
            },
            RealWorldSpec {
                name: "ACSP",
                n: 86_600,
                numeric_attrs: 4,
                categorical_attrs: 14,
                minority_fraction: 0.092,
                minority_pos_rate: 0.483,
                majority_pos_rate: 0.70,
                drift_angle_deg: 100.0,
                group_offset: 0.55,
                class_sep: 1.8,
                cluster_std: 0.7,
                outlier_fraction: 0.15,
                outlier_scale: 2.5,
                label_noise: 0.02,
                base_seed: 0x4143_5350,
                minority_name: "African-American",
                task: "covered by private insurance",
            },
            RealWorldSpec {
                name: "ACSH",
                n: 250_847,
                numeric_attrs: 4,
                categorical_attrs: 21,
                minority_fraction: 0.073,
                minority_pos_rate: 0.093,
                majority_pos_rate: 0.16,
                drift_angle_deg: 120.0,
                group_offset: 0.5,
                class_sep: 2.0,
                cluster_std: 0.65,
                outlier_fraction: 0.15,
                outlier_scale: 2.5,
                label_noise: 0.03,
                base_seed: 0x4143_5348,
                minority_name: "African-American",
                task: "having health insurance",
            },
            RealWorldSpec {
                name: "ACSE",
                n: 250_847,
                numeric_attrs: 4,
                categorical_attrs: 11,
                minority_fraction: 0.073,
                minority_pos_rate: 0.393,
                majority_pos_rate: 0.58,
                drift_angle_deg: 110.0,
                group_offset: 0.75,
                class_sep: 1.8,
                cluster_std: 0.7,
                outlier_fraction: 0.15,
                outlier_scale: 2.5,
                label_noise: 0.02,
                base_seed: 0x4143_5345,
                minority_name: "African-American",
                task: "employment",
            },
            RealWorldSpec {
                name: "ACSI",
                n: 250_847,
                numeric_attrs: 6,
                categorical_attrs: 13,
                minority_fraction: 0.073,
                minority_pos_rate: 0.402,
                majority_pos_rate: 0.62,
                drift_angle_deg: 105.0,
                group_offset: 0.65,
                class_sep: 1.9,
                cluster_std: 0.7,
                outlier_fraction: 0.15,
                outlier_scale: 2.5,
                label_noise: 0.02,
                base_seed: 0x4143_5349,
                minority_name: "African-American",
                task: "income poverty rate<250",
            },
        ]
    }

    /// Look up a spec by its paper name (case-sensitive).
    pub fn by_name(name: &str) -> Option<RealWorldSpec> {
        Self::all().into_iter().find(|s| s.name == name)
    }

    /// Generate at the paper's full size.
    pub fn generate(&self, seed: u64) -> Dataset {
        self.generate_scaled(1.0, seed)
    }

    /// Generate at `scale × n` rows (minimum 400) — the laptop-run path.
    pub fn generate_scaled(&self, scale: f64, seed: u64) -> Dataset {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        let n = (((self.n as f64) * scale).round() as usize).max(400);
        let mut rng = StdRng::seed_from_u64(seed ^ self.base_seed);

        // ----- cell counts from the Fig. 4 marginals -----
        let n_u = (((n as f64) * self.minority_fraction).round() as usize).clamp(40, n - 40);
        let n_w = n - n_u;
        let n_u1 = (((n_u as f64) * self.minority_pos_rate).round() as usize).clamp(10, n_u - 10);
        let n_w1 = (((n_w as f64) * self.majority_pos_rate).round() as usize).clamp(10, n_w - 10);
        // (group, label, count)
        let cells = [
            (0u8, 0u8, n_w - n_w1),
            (0u8, 1u8, n_w1),
            (1u8, 0u8, n_u - n_u1),
            (1u8, 1u8, n_u1),
        ];

        // ----- geometry -----
        let q = self.numeric_attrs;
        let angle = self.drift_angle_deg * std::f64::consts::PI / 180.0;
        // Label directions in the (e1, e2) plane.
        let w_dir = [1.0, 0.0];
        let u_dir = [angle.cos(), angle.sin()];
        // Covariate shift along e_q/e2 so groups don't coincide.
        let offset_dim = if q >= 3 { 2 } else { q - 1 };
        let center = |g: u8, y: u8| -> Vec<f64> {
            let dir = if g == 0 { w_dir } else { u_dir };
            let sign = if y == 1 { 1.0 } else { -1.0 };
            let mut c = vec![0.0; q];
            c[0] += sign * self.class_sep * 0.5 * dir[0];
            if q >= 2 {
                c[1] += sign * self.class_sep * 0.5 * dir[1];
            }
            if g == 1 {
                // Covariate shift: mostly orthogonal to the label plane, but
                // leaning toward the majority's *negative* side — minorities
                // live where the majority-trained model defaults to "no",
                // which is the under-selection the paper's baselines show.
                c[offset_dim] += self.group_offset * 0.8;
                c[0] -= self.group_offset * 0.6 * w_dir[0];
                if q >= 2 {
                    c[1] -= self.group_offset * 0.6 * w_dir[1];
                }
            }
            c
        };

        // Per-group correlated covariance: std²·I plus a random symmetric
        // perturbation, factored once per group.
        let mut group_chol = Vec::with_capacity(2);
        for _ in 0..2 {
            let mut cov = Matrix::identity(q);
            cov.scale(self.cluster_std * self.cluster_std);
            for i in 0..q {
                for j in (i + 1)..q {
                    let c: f64 = rng.gen_range(-0.25..0.25) * self.cluster_std * self.cluster_std;
                    cov[(i, j)] += c;
                    cov[(j, i)] += c;
                }
                cov[(i, i)] += 0.3 * self.cluster_std * self.cluster_std;
            }
            group_chol.push(cholesky(&cov).expect("construction keeps cov SPD"));
        }

        // ----- categorical level distributions -----
        // Per attribute: 2–4 levels with cell-tilted softmax probabilities.
        let cat_levels: Vec<usize> = (0..self.categorical_attrs)
            .map(|_| rng.gen_range(2..=4))
            .collect();
        let cat_params: Vec<Vec<(f64, f64, f64)>> = cat_levels
            .iter()
            .map(|&l| {
                (0..l)
                    .map(|_| {
                        (
                            rng.gen_range(-0.5..0.5), // base
                            rng.gen_range(-0.8..0.8), // group tilt
                            rng.gen_range(-0.8..0.8), // label tilt
                        )
                    })
                    .collect()
            })
            .collect();

        // ----- sampling -----
        let total: usize = cells.iter().map(|&(_, _, c)| c).sum();
        let mut numeric: Vec<Vec<f64>> = vec![Vec::with_capacity(total); q];
        let mut categorical: Vec<Vec<u32>> =
            vec![Vec::with_capacity(total); self.categorical_attrs];
        let mut labels: Vec<u8> = Vec::with_capacity(total);
        let mut groups: Vec<u8> = Vec::with_capacity(total);

        for (g, y, count) in cells {
            let core_mean = center(g, y);
            // Outliers are a diffuse cloud centred between the cell's own
            // core and the *opposite-label* core of the same group: heavy
            // tails that lean toward the confusable region. Uniform
            // reweighing (KAM/OMN) amplifies this mass; conformance gating
            // does not.
            let confuser_mean: Vec<f64> = center(g, 1 - y)
                .iter()
                .zip(&core_mean)
                .map(|(c, o)| 0.6 * c + 0.4 * o)
                .collect();
            let chol = &group_chol[g as usize];
            let n_outliers = ((count as f64) * self.outlier_fraction).round() as usize;
            for k in 0..count {
                let is_outlier = k < n_outliers;
                let z = normal_vec(&mut rng, q);
                let correlated = chol.l_matvec(&z).expect("dims match");
                for (j, col) in numeric.iter_mut().enumerate() {
                    let v = if is_outlier {
                        confuser_mean[j] + self.outlier_scale * correlated[j]
                    } else {
                        core_mean[j] + correlated[j]
                    };
                    col.push(v);
                }
                for (a, col) in categorical.iter_mut().enumerate() {
                    let params = &cat_params[a];
                    let weights: Vec<f64> = params
                        .iter()
                        .map(|&(b, gt, lt)| (b + gt * f64::from(g) + lt * f64::from(y)).exp())
                        .collect();
                    let total_w: f64 = weights.iter().sum();
                    let mut u: f64 = rng.gen_range(0.0..total_w);
                    let mut code = 0u32;
                    for (idx, w) in weights.iter().enumerate() {
                        if u < *w {
                            code = idx as u32;
                            break;
                        }
                        u -= w;
                    }
                    col.push(code);
                }
                labels.push(y);
                groups.push(g);
            }
        }

        // Label noise.
        let flips = ((total as f64) * self.label_noise).round() as usize;
        let mut idx: Vec<usize> = (0..total).collect();
        idx.shuffle(&mut rng);
        for &i in idx.iter().take(flips) {
            labels[i] ^= 1;
        }

        // Shuffle tuple order.
        let mut order: Vec<usize> = (0..total).collect();
        order.shuffle(&mut rng);
        let reorder_f64 = |col: &[f64]| -> Vec<f64> { order.iter().map(|&i| col[i]).collect() };
        let reorder_u32 = |col: &[u32]| -> Vec<u32> { order.iter().map(|&i| col[i]).collect() };
        let labels: Vec<u8> = order.iter().map(|&i| labels[i]).collect();
        let groups: Vec<u8> = order.iter().map(|&i| groups[i]).collect();

        let mut col_names = Vec::with_capacity(q + self.categorical_attrs);
        let mut columns = Vec::with_capacity(q + self.categorical_attrs);
        for (j, col) in numeric.iter().enumerate() {
            col_names.push(format!("num{}", j + 1));
            columns.push(Column::Numeric(reorder_f64(col)));
        }
        for (a, col) in categorical.iter().enumerate() {
            col_names.push(format!("cat{}", a + 1));
            let levels: Vec<String> = (0..cat_levels[a]).map(|l| format!("L{l}")).collect();
            columns.push(Column::Categorical {
                codes: reorder_u32(col),
                levels,
            });
        }

        Dataset::new(self.name, col_names, columns, labels, groups)
            .expect("generated buffers are consistent")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf_data::{CellIndex, MINORITY};

    #[test]
    fn all_specs_match_fig4_columns() {
        let specs = RealWorldSpec::all();
        assert_eq!(specs.len(), 7);
        let names: Vec<&str> = specs.iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            ["MEPS", "LSAC", "Credit", "ACSP", "ACSH", "ACSE", "ACSI"]
        );
        let meps = RealWorldSpec::by_name("MEPS").unwrap();
        assert_eq!(meps.n, 15_675);
        assert_eq!(meps.numeric_attrs, 6);
        assert_eq!(meps.categorical_attrs, 34);
        assert!(RealWorldSpec::by_name("nope").is_none());
    }

    #[test]
    fn generated_marginals_match_spec() {
        let spec = RealWorldSpec::by_name("LSAC").unwrap();
        let d = spec.generate_scaled(0.2, 1);
        let s = d.summary();
        assert!(
            (s.minority_fraction - spec.minority_fraction).abs() < 0.02,
            "minority fraction {}",
            s.minority_fraction
        );
        // Label noise perturbs the positive rate slightly.
        assert!(
            (s.minority_positive_fraction - spec.minority_pos_rate).abs() < 0.06,
            "minority positive rate {}",
            s.minority_positive_fraction
        );
        assert_eq!(s.numeric_attrs, spec.numeric_attrs);
        assert_eq!(s.categorical_attrs, spec.categorical_attrs);
    }

    #[test]
    fn scaled_size() {
        let spec = RealWorldSpec::by_name("Credit").unwrap();
        let d = spec.generate_scaled(0.05, 2);
        let expect = (spec.n as f64 * 0.05).round() as usize;
        assert_eq!(d.len(), expect);
    }

    #[test]
    fn deterministic_per_seed_and_distinct_across_datasets() {
        let a = RealWorldSpec::by_name("ACSE")
            .unwrap()
            .generate_scaled(0.02, 3);
        let b = RealWorldSpec::by_name("ACSE")
            .unwrap()
            .generate_scaled(0.02, 3);
        assert_eq!(a, b);
        let c = RealWorldSpec::by_name("ACSI")
            .unwrap()
            .generate_scaled(0.02, 3);
        assert_ne!(a.labels(), c.labels());
    }

    #[test]
    fn groups_exhibit_covariate_drift() {
        let spec = RealWorldSpec::by_name("MEPS").unwrap();
        let d = spec.generate_scaled(0.2, 4);
        let w = d.group_indices(0);
        let u = d.group_indices(1);
        let wm = cf_linalg::stats::column_means(&d.numeric_matrix(Some(&w)));
        let um = cf_linalg::stats::column_means(&d.numeric_matrix(Some(&u)));
        let shift: f64 = wm
            .iter()
            .zip(&um)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        assert!(shift > 0.3, "group centres should drift apart: {shift}");
    }

    #[test]
    fn minority_positive_cell_has_outlier_tail() {
        let spec = RealWorldSpec::by_name("Credit").unwrap();
        let d = spec.generate_scaled(0.1, 5);
        let idx = d.cell_indices(CellIndex {
            group: MINORITY,
            label: 1,
        });
        let m = d.numeric_matrix(Some(&idx));
        // Distance of each tuple from the cell's own mean: the outlier mix
        // makes the 95th percentile much larger than the median.
        let mean = cf_linalg::stats::column_means(&m);
        let dists: Vec<f64> = m
            .iter_rows()
            .map(|r| cf_linalg::vector::dist2_sq(r, &mean).sqrt())
            .collect();
        let med = cf_linalg::vector::quantile(&dists, 0.5);
        let p95 = cf_linalg::vector::quantile(&dists, 0.95);
        assert!(
            p95 > 1.8 * med,
            "heavy tail expected: median {med}, p95 {p95}"
        );
    }

    #[test]
    fn categorical_attrs_depend_on_cell() {
        let spec = RealWorldSpec::by_name("ACSP").unwrap();
        let d = spec.generate_scaled(0.1, 6);
        // At least one categorical attribute's level distribution differs
        // between the two groups (total-variation distance above noise).
        let w = d.group_indices(0);
        let u = d.group_indices(1);
        let mut max_tv = 0.0_f64;
        for j in d.numeric_column_indices().len()..d.num_attributes() {
            let (codes, levels) = d.column(j).as_categorical().unwrap();
            let hist = |idx: &[usize]| -> Vec<f64> {
                let mut h = vec![0.0; levels.len()];
                for &i in idx {
                    h[codes[i] as usize] += 1.0;
                }
                let t: f64 = h.iter().sum();
                h.iter().map(|v| v / t).collect()
            };
            let hw = hist(&w);
            let hu = hist(&u);
            let tv: f64 = hw.iter().zip(&hu).map(|(a, b)| (a - b).abs()).sum::<f64>() / 2.0;
            max_tv = max_tv.max(tv);
        }
        assert!(max_tv > 0.05, "some categorical drift expected: {max_tv}");
    }
}
