//! The paper's Fig. 1 running example: a 2-D dataset with two groups whose
//! attribute distributions drift apart.
//!
//! Layout (matching the figure's geometry):
//! * majority positive (blue circles)  — cluster near (0.5, 1.15); `X1` is
//!   noise for the majority (wide spread), `X2` carries its label signal
//! * majority negative (blue triangles) — cluster near (0.5, 0.55)
//! * minority positive (orange circles) — tight cluster near (1.44, 0.50),
//!   the analogue of the dense constraint rectangle quoted in Example 3
//! * minority negative (orange triangles) — cluster near (1.20, 0.74)
//!
//! Both minority clusters sit *below* the majority decision line
//! `X2 ≈ 0.85`, so a single model trained on everything predicts nearly all
//! minorities negative — the unfair baseline of Example 1 (selection rate
//! near zero for the orange group). The minority's label direction
//! `U+ − U− ≈ (0.24, −0.24)` points 135° away from the majority's `(0, +1)`:
//! serving U+ needs `w1 > w2`, which floods the majority's margins with its
//! wide `X1` noise — so the pooled model refuses, until ConFair's reweighing
//! re-balances the trade (and then most, not all, minority positives flip,
//! exactly Example 4/5's account).

use cf_data::{Column, Dataset};
use rand::{rngs::StdRng, SeedableRng};

use crate::sample_normal;

/// Tuple counts used by [`figure1`]: majority 400/400, minority 60/60.
pub const FIG1_MAJORITY_PER_LABEL: usize = 400;
/// Minority per-label count.
pub const FIG1_MINORITY_PER_LABEL: usize = 60;

/// Generate the Fig. 1 dataset. Deterministic per `seed`.
pub fn figure1(seed: u64) -> Dataset {
    figure1_sized(seed, FIG1_MAJORITY_PER_LABEL, FIG1_MINORITY_PER_LABEL)
}

/// [`figure1`] with custom per-(group,label) counts.
pub fn figure1_sized(seed: u64, majority_per_label: usize, minority_per_label: usize) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xF1_61);
    let mut x1 = Vec::new();
    let mut x2 = Vec::new();
    let mut labels = Vec::new();
    let mut groups = Vec::new();

    // (group, label, center, spread, count)
    type CellSpec = (u8, u8, [f64; 2], [f64; 2], usize);
    let cells: [CellSpec; 4] = [
        (0, 1, [0.5, 1.15], [0.28, 0.16], majority_per_label),
        (0, 0, [0.5, 0.55], [0.28, 0.16], majority_per_label),
        (1, 1, [1.44, 0.50], [0.045, 0.045], minority_per_label),
        (1, 0, [1.20, 0.74], [0.10, 0.08], minority_per_label),
    ];
    for (g, y, center, spread, count) in cells {
        for _ in 0..count {
            x1.push(center[0] + spread[0] * sample_normal(&mut rng));
            x2.push(center[1] + spread[1] * sample_normal(&mut rng));
            labels.push(y);
            groups.push(g);
        }
    }

    Dataset::new(
        "Fig1",
        vec!["X1".into(), "X2".into()],
        vec![Column::Numeric(x1), Column::Numeric(x2)],
        labels,
        groups,
    )
    .expect("generated buffers are consistent")
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf_data::{CellIndex, MINORITY};

    #[test]
    fn sizes_match_spec() {
        let d = figure1(7);
        assert_eq!(
            d.len(),
            2 * (FIG1_MAJORITY_PER_LABEL + FIG1_MINORITY_PER_LABEL)
        );
        assert_eq!(
            d.cell_count(CellIndex {
                group: MINORITY,
                label: 1
            }),
            FIG1_MINORITY_PER_LABEL
        );
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(figure1(3), figure1(3));
        assert_ne!(figure1(3), figure1(4));
    }

    #[test]
    fn minority_positive_sits_in_example3_region() {
        let d = figure1(11);
        let idx = d.cell_indices(CellIndex {
            group: MINORITY,
            label: 1,
        });
        let m = d.numeric_matrix(Some(&idx));
        let mut inside = 0;
        for row in m.iter_rows() {
            if (1.29..=1.59).contains(&row[0]) && (0.35..=0.65).contains(&row[1]) {
                inside += 1;
            }
        }
        // The cluster is tight: nearly all points in (a slightly padded
        // version of) the Example 3 constraint rectangle.
        assert!(inside as f64 / idx.len() as f64 > 0.95);
    }

    #[test]
    fn groups_drift_apart_in_x1() {
        let d = figure1(5);
        let w_idx = d.group_indices(0);
        let u_idx = d.group_indices(1);
        let w_mean = cf_linalg::vector::mean(d.numeric_matrix(Some(&w_idx)).col(0).as_slice());
        let u_mean = cf_linalg::vector::mean(d.numeric_matrix(Some(&u_idx)).col(0).as_slice());
        assert!(
            u_mean - w_mean > 0.5,
            "drift over groups in X1: {w_mean} vs {u_mean}"
        );
    }

    #[test]
    fn custom_sizes_respected() {
        let d = figure1_sized(1, 10, 5);
        assert_eq!(d.len(), 30);
        assert_eq!(d.group_count(MINORITY), 10);
    }
}
