//! Synthetic drifting streams for the online monitoring subsystem.
//!
//! [`DriftStream`] emits time-ordered micro-batches of the `synthgen`
//! geometry. Before `drift_onset` both groups share the same
//! label-direction (+e1) — a single fair model serves both. From the onset
//! the drifted group's label-conditional distribution rotates by
//! `drift_angle` (optionally ramped over `transition` tuples): exactly the
//! group-conditional drift the paper equates with emerging unfairness. A
//! model trained on the pre-drift reference starts mis-serving the drifted
//! group, its conformance-violation rate rises, and the windowed disparate
//! impact decays — the signals `cf-stream` is built to catch.

use crate::normal_vec;
use cf_data::{Column, Dataset, MINORITY};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// How long ground truth trails serving, in tuples — the label-delay
/// distribution of a [`DelayedLabelStream`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LabelDelay {
    /// Labels are available by the end of the batch that served them
    /// (they still travel as feedback, exercising the join path).
    Immediate,
    /// Every label arrives exactly this many tuples after its own.
    Fixed(u64),
    /// Per-tuple delay drawn uniformly from `min..=max` tuples.
    Uniform {
        /// Smallest possible delay.
        min: u64,
        /// Largest possible delay (inclusive).
        max: u64,
    },
}

impl serde::Serialize for LabelDelay {
    fn to_value(&self) -> serde::Value {
        match self {
            LabelDelay::Immediate => serde::Value::String("immediate".into()),
            LabelDelay::Fixed(delay) => {
                serde::Value::Object(vec![("fixed".into(), delay.to_value())])
            }
            LabelDelay::Uniform { min, max } => serde::Value::Object(vec![(
                "uniform".into(),
                serde::Value::Object(vec![
                    ("min".into(), min.to_value()),
                    ("max".into(), max.to_value()),
                ]),
            )]),
        }
    }
}

impl serde::Deserialize for LabelDelay {
    fn from_value(v: &serde::Value) -> std::result::Result<Self, serde::Error> {
        if v.as_str() == Some("immediate") {
            return Ok(LabelDelay::Immediate);
        }
        if let Some(fixed) = v.get("fixed") {
            return Ok(LabelDelay::Fixed(serde::Deserialize::from_value(fixed)?));
        }
        if let Some(uniform) = v.get("uniform") {
            return Ok(LabelDelay::Uniform {
                min: serde::Deserialize::from_value(uniform.get_or_err("min")?)?,
                max: serde::Deserialize::from_value(uniform.get_or_err("max")?)?,
            });
        }
        Err(serde::Error::msg("unknown label delay"))
    }
}

/// Specification of a drifting stream.
///
/// The knobs fall into four groups:
///
/// * **Geometry** — `n_features`, `class_sep`, `cluster_std`,
///   `minority_std_factor`, `minority_offset`: how separable the classes
///   are and how the minority's tighter, offset sub-region sits relative
///   to the majority (the Fig. 10 geometry).
/// * **Mixture** — `groups`, `minority_fraction`, `positive_rate`: how
///   many group cells arrive and at what rates. At the default
///   `groups: 2` the generator is **bit-identical** to the historical
///   binary stream; for `groups > 2` cell 0 keeps the majority geometry
///   and `minority_fraction` is split uniformly across cells `1..K`,
///   each living in its own offset sub-region.
/// * **Drift schedule** — `drift_onset` (stream clock at which the
///   drifted group's label direction starts rotating; `u64::MAX` for a
///   stationary stream), `drift_angle` (how far it rotates), `drift_group`
///   (who drifts first), `onset_step` (0 = only `drift_group` ever
///   drifts; otherwise the drift spreads to cell `(drift_group + j) % K`
///   at `drift_onset + j * onset_step` — the staggered subgroup drift of
///   Salazar et al.'s setting), and `transition` (0 = abrupt shift;
///   otherwise each cell's rotation ramps linearly over this many tuples
///   from *its own* onset). Detection latency in `cf-stream` benchmarks
///   is measured against `drift_onset`.
/// * **Label feedback** — `label_delay`, `missing_label_rate`: how long
///   ground truth trails serving and what fraction never arrives at all.
///   Only [`DelayedLabelStream`] reads these knobs; the plain
///   [`DriftStream`] always emits fully labeled batches.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct DriftStreamSpec {
    /// Total features; the first two are informative, the rest noise.
    pub n_features: usize,
    /// Distance between class centers along a group's label direction.
    pub class_sep: f64,
    /// Within-cluster standard deviation (majority).
    pub cluster_std: f64,
    /// Minority cluster std as a fraction of `cluster_std`.
    pub minority_std_factor: f64,
    /// Offset of the minority's center, orthogonal to its label direction.
    pub minority_offset: f64,
    /// Number of group cells `K` (1..=256). 2 is the historical binary
    /// stream, emitted bit-identically; `K > 2` splits the minority mass
    /// uniformly across cells `1..K`.
    pub groups: usize,
    /// Probability an arriving tuple belongs to the minority (for
    /// `groups > 2`: to *any* of the cells `1..K`, uniformly).
    pub minority_fraction: f64,
    /// Probability of a positive label.
    pub positive_rate: f64,
    /// Tuple index at which the drift begins.
    pub drift_onset: u64,
    /// Rotation (radians) of the drifted group's label direction after the
    /// onset. π fully opposes the labels; π/2 makes them orthogonal.
    pub drift_angle: f64,
    /// Which cell drifts first.
    pub drift_group: u8,
    /// Staggered spread of the drift across cells: 0 confines the drift
    /// to `drift_group` forever; otherwise cell `(drift_group + j) % K`
    /// starts drifting at `drift_onset + j * onset_step`.
    pub onset_step: u64,
    /// Tuples over which each drifting cell's rotation ramps from 0 to
    /// `drift_angle`, counted from that cell's own onset (0 = abrupt).
    pub transition: u64,
    /// How long ground truth trails serving (read by
    /// [`DelayedLabelStream`]).
    pub label_delay: LabelDelay,
    /// Fraction of tuples whose ground truth never arrives (read by
    /// [`DelayedLabelStream`]); must be in `[0, 1)`.
    pub missing_label_rate: f64,
}

/// Hand-written so later-vintage knobs are *optional* on parse:
/// [`DriftStreamCheckpoint`] documents carry no version field, and specs
/// saved before those knobs existed must keep restoring — a missing
/// `label_delay` / `missing_label_rate` defaults to the fully-labeled
/// regime (`Immediate` / 0.0), and a missing `groups` / `onset_step`
/// defaults to the binary single-drift stream (`2` / `0`), which is
/// exactly what those streams were.
impl serde::Deserialize for DriftStreamSpec {
    fn from_value(v: &serde::Value) -> std::result::Result<Self, serde::Error> {
        let req = |key: &str| v.get_or_err(key);
        Ok(DriftStreamSpec {
            n_features: serde::Deserialize::from_value(req("n_features")?)?,
            class_sep: serde::Deserialize::from_value(req("class_sep")?)?,
            cluster_std: serde::Deserialize::from_value(req("cluster_std")?)?,
            minority_std_factor: serde::Deserialize::from_value(req("minority_std_factor")?)?,
            minority_offset: serde::Deserialize::from_value(req("minority_offset")?)?,
            groups: match v.get("groups") {
                Some(groups) => serde::Deserialize::from_value(groups)?,
                None => 2,
            },
            minority_fraction: serde::Deserialize::from_value(req("minority_fraction")?)?,
            positive_rate: serde::Deserialize::from_value(req("positive_rate")?)?,
            drift_onset: serde::Deserialize::from_value(req("drift_onset")?)?,
            drift_angle: serde::Deserialize::from_value(req("drift_angle")?)?,
            drift_group: serde::Deserialize::from_value(req("drift_group")?)?,
            onset_step: match v.get("onset_step") {
                Some(step) => serde::Deserialize::from_value(step)?,
                None => 0,
            },
            transition: serde::Deserialize::from_value(req("transition")?)?,
            label_delay: match v.get("label_delay") {
                Some(delay) => serde::Deserialize::from_value(delay)?,
                None => LabelDelay::Immediate,
            },
            missing_label_rate: match v.get("missing_label_rate") {
                Some(rate) => serde::Deserialize::from_value(rate)?,
                None => 0.0,
            },
        })
    }
}

impl Default for DriftStreamSpec {
    fn default() -> Self {
        DriftStreamSpec {
            n_features: 2,
            class_sep: 1.6,
            cluster_std: 0.45,
            minority_std_factor: 0.85,
            minority_offset: 1.1,
            groups: 2,
            minority_fraction: 0.35,
            positive_rate: 0.5,
            drift_onset: 10_000,
            drift_angle: std::f64::consts::FRAC_PI_2,
            drift_group: MINORITY,
            onset_step: 0,
            transition: 0,
            label_delay: LabelDelay::Immediate,
            missing_label_rate: 0.0,
        }
    }
}

impl DriftStreamSpec {
    /// A stationary (never-drifting) sample of `n` tuples — the labeled
    /// reference used to bootstrap a `StreamEngine`. Uses an independent
    /// RNG stream from the live stream itself.
    pub fn reference(&self, n: usize, seed: u64) -> Dataset {
        let mut stationary = *self;
        stationary.drift_onset = u64::MAX;
        let mut stream = DriftStream::new(stationary, seed ^ 0xA5A5_5A5A_1234_8765);
        stream.next_batch_named(n, "drift-reference")
    }
}

/// A saved [`DriftStream`] position: the spec, the exact RNG state (as hex
/// words — the JSON shim's f64-backed numbers cannot carry full-range u64s),
/// and the stream clock. Restoring yields a generator whose subsequent
/// batches are bit-identical to the uninterrupted stream's, so a serving
/// checkpoint can be replayed against the exact same future traffic.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DriftStreamCheckpoint {
    /// The stream's specification.
    pub spec: DriftStreamSpec,
    /// xoshiro256++ state words, big-endian hex.
    pub rng_state: Vec<String>,
    /// Tuples emitted when the checkpoint was taken.
    pub emitted: u64,
}

/// The stateful generator: deterministic per seed, time-ordered output.
#[derive(Debug, Clone)]
pub struct DriftStream {
    spec: DriftStreamSpec,
    rng: StdRng,
    emitted: u64,
}

/// Spec validation shared by [`DriftStream::new`] (which panics, as a
/// programming-error guard) and [`DriftStream::restore`] (which returns the
/// message as a typed error, since checkpoints are external input).
fn validate_spec(spec: &DriftStreamSpec) -> Result<(), String> {
    if spec.n_features < 2 {
        return Err("need the 2 informative features".into());
    }
    if !(spec.minority_fraction > 0.0 && spec.minority_fraction < 1.0) {
        return Err("minority fraction must be in (0, 1)".into());
    }
    if !(spec.positive_rate > 0.0 && spec.positive_rate < 1.0) {
        return Err("positive rate must be in (0, 1)".into());
    }
    if !(1..=256).contains(&spec.groups) {
        return Err("groups must be in 1..=256 (cell ids are u8)".into());
    }
    if usize::from(spec.drift_group) >= spec.groups {
        return Err("drift group must be one of the configured cells".into());
    }
    if !(0.0..1.0).contains(&spec.missing_label_rate) {
        return Err("missing-label rate must be in [0, 1)".into());
    }
    if let LabelDelay::Uniform { min, max } = spec.label_delay {
        if min > max {
            return Err("label-delay range must have min <= max".into());
        }
    }
    Ok(())
}

impl DriftStream {
    /// A stream positioned at tuple 0.
    ///
    /// # Panics
    /// Panics on non-sensical specs (fractions outside (0, 1), fewer than
    /// 2 features, `groups` outside 1..=256, or a drift group outside the
    /// configured cells).
    pub fn new(spec: DriftStreamSpec, seed: u64) -> Self {
        if let Err(msg) = validate_spec(&spec) {
            panic!("{msg}");
        }
        DriftStream {
            spec,
            rng: StdRng::seed_from_u64(seed.wrapping_mul(0xD134_2543_DE82_EF95).wrapping_add(11)),
            emitted: 0,
        }
    }

    /// Capture the stream's exact position (spec + RNG state + clock).
    pub fn checkpoint(&self) -> DriftStreamCheckpoint {
        DriftStreamCheckpoint {
            spec: self.spec,
            rng_state: self
                .rng
                .state()
                .iter()
                .map(|w| format!("{w:016x}"))
                .collect(),
            emitted: self.emitted,
        }
    }

    /// Rebuild a stream at a previously captured position. The restored
    /// stream's future batches are bit-identical to the ones the original
    /// would have produced.
    ///
    /// # Errors
    /// Returns a typed error (never panics) on malformed RNG state or a
    /// non-sensical spec — checkpoints are external input.
    pub fn restore(ckpt: &DriftStreamCheckpoint) -> Result<Self, serde::Error> {
        validate_spec(&ckpt.spec).map_err(serde::Error::msg)?;
        if ckpt.rng_state.len() != 4 {
            return Err(serde::Error::msg(format!(
                "rng state must have 4 words, got {}",
                ckpt.rng_state.len()
            )));
        }
        let mut words = [0u64; 4];
        for (slot, hex) in words.iter_mut().zip(&ckpt.rng_state) {
            *slot = u64::from_str_radix(hex, 16)
                .map_err(|e| serde::Error::msg(format!("bad rng word `{hex}`: {e}")))?;
        }
        Ok(DriftStream {
            spec: ckpt.spec,
            rng: StdRng::from_state(words),
            emitted: ckpt.emitted,
        })
    }

    /// Tuples emitted so far (the stream clock).
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// The spec this stream was built from.
    pub fn spec(&self) -> &DriftStreamSpec {
        &self.spec
    }

    /// The active rotation angle of the first-drifting cell
    /// ([`DriftStreamSpec::drift_group`]) at stream time `t`.
    pub fn angle_at(&self, t: u64) -> f64 {
        self.cell_angle_at(self.spec.drift_group, t)
    }

    /// The stream clock at which cell `g` begins to drift: `drift_group`
    /// drifts at `drift_onset`; with a non-zero
    /// [`DriftStreamSpec::onset_step`] the drift spreads to cell
    /// `(drift_group + j) % K` at `drift_onset + j * onset_step`;
    /// otherwise every other cell returns `u64::MAX` (never).
    pub fn cell_onset(&self, g: u8) -> u64 {
        let spec = &self.spec;
        let k = spec.groups as u64;
        let j = (u64::from(g) + k - u64::from(spec.drift_group)) % k;
        if j == 0 {
            spec.drift_onset
        } else if spec.onset_step == 0 {
            u64::MAX
        } else {
            spec.drift_onset
                .saturating_add(j.saturating_mul(spec.onset_step))
        }
    }

    /// The active rotation angle of cell `g` at stream time `t`, counted
    /// from that cell's own onset ([`DriftStream::cell_onset`]).
    pub fn cell_angle_at(&self, g: u8, t: u64) -> f64 {
        let spec = &self.spec;
        let onset = self.cell_onset(g);
        if t < onset {
            0.0
        } else if spec.transition == 0 {
            spec.drift_angle
        } else {
            let progress = (t - onset) as f64 / spec.transition as f64;
            spec.drift_angle * progress.min(1.0)
        }
    }

    /// Emit the next `k` tuples as a time-ordered dataset named `stream`.
    pub fn next_batch(&mut self, k: usize) -> Dataset {
        self.next_batch_named(k, "stream")
    }

    /// Emit the next `k` tuples under an explicit dataset name.
    pub fn next_batch_named(&mut self, k: usize, name: &str) -> Dataset {
        let d = self.spec.n_features;
        let mut columns: Vec<Vec<f64>> = vec![Vec::with_capacity(k); d];
        let mut labels = Vec::with_capacity(k);
        let mut groups = Vec::with_capacity(k);
        for _ in 0..k {
            let (x, y, g) = self.emit_one();
            for (j, v) in x.into_iter().enumerate() {
                columns[j].push(v);
            }
            labels.push(y);
            groups.push(g);
        }
        let col_names: Vec<String> = (0..d).map(|j| format!("X{}", j + 1)).collect();
        Dataset::new(
            name,
            col_names,
            columns.into_iter().map(Column::Numeric).collect(),
            labels,
            groups,
        )
        .expect("generated buffers are consistent")
    }

    fn emit_one(&mut self) -> (Vec<f64>, u8, u8) {
        let spec = self.spec;
        // Cell draw. `groups == 2` MUST keep the historical draw sequence
        // and arithmetic bit-for-bit (the binary stream is pinned by the
        // K=2 equivalence fixtures); K > 2 splits the minority mass
        // uniformly across cells 1..K with one extra uniform draw, K == 1
        // draws nothing.
        let group = if spec.groups == 2 {
            u8::from(self.rng.gen_bool(spec.minority_fraction))
        } else if spec.groups == 1 {
            0
        } else if self.rng.gen_bool(spec.minority_fraction) {
            1 + self.rng.gen_range(0..spec.groups as u64 - 1) as u8
        } else {
            0
        };
        let label = u8::from(self.rng.gen_bool(spec.positive_rate));
        let sign = if label == 1 { 1.0 } else { -1.0 };

        // Label direction: +e1, rotated once the stream clock passes the
        // cell's own onset.
        let angle = self.cell_angle_at(group, self.emitted);
        let dir = [angle.cos(), angle.sin()];
        // Non-baseline cells live in tighter sub-regions offset from the
        // majority (the Fig. 10 geometry). At K=2 the offset is exactly
        // orthogonal to the label direction (so it carries no label
        // signal, preserved bit-for-bit from the binary stream); at
        // K > 2 the 2-plane cannot hold K-1 mutually orthogonal offsets,
        // so cell g sits at angle π·g/K from the label direction —
        // distinct per cell, never parallel to ±dir, and a constant
        // within the cell, so within-cell label separation is unchanged.
        let (offset, std) = if group == 0 {
            ([0.0, 0.0], spec.cluster_std)
        } else if spec.groups == 2 {
            (
                [
                    -dir[1] * spec.minority_offset,
                    dir[0] * spec.minority_offset,
                ],
                spec.cluster_std * spec.minority_std_factor,
            )
        } else {
            let phi = angle + std::f64::consts::PI * f64::from(group) / spec.groups as f64;
            (
                [
                    phi.cos() * spec.minority_offset,
                    phi.sin() * spec.minority_offset,
                ],
                spec.cluster_std * spec.minority_std_factor,
            )
        };

        let mut x = normal_vec(&mut self.rng, spec.n_features);
        for v in x.iter_mut() {
            *v *= std;
        }
        x[0] += sign * spec.class_sep * 0.5 * dir[0] + offset[0];
        x[1] += sign * spec.class_sep * 0.5 * dir[1] + offset[1];

        self.emitted += 1;
        (x, label, group)
    }
}

/// A [`DriftStream`] whose ground truth arrives **late or never** — the
/// workload generator for the delayed/partial-label serving regime.
///
/// Each batch comes in two parts: the freshly emitted tuples (serve them
/// unlabeled — strip the dataset's labels at ingest) and the feedback that
/// has *come due* by the end of the batch — `(tuple id, label)` pairs for
/// tuples emitted earlier, per the spec's [`DriftStreamSpec::label_delay`]
/// distribution. A [`DriftStreamSpec::missing_label_rate`] fraction of
/// labels never arrives at all.
///
/// Tuple ids count emitted tuples from 0 in stream order, which is exactly
/// the id a `cf-stream` engine assigns when the whole stream is ingested
/// into it in order — so the feedback pairs can be handed to
/// `StreamEngine::feedback` verbatim.
///
/// Delay draws come from an **independent RNG stream**: the emitted
/// geometry is bit-identical to a plain [`DriftStream`] with the same spec
/// and seed, so delayed-label runs are comparable tuple-for-tuple with
/// fully-labeled ones.
#[derive(Debug, Clone)]
pub struct DelayedLabelStream {
    inner: DriftStream,
    delay_rng: StdRng,
    /// Scheduled deliveries: due clock → the `(id, label)` records that
    /// become available once `emitted()` reaches the key.
    due: std::collections::BTreeMap<u64, Vec<(u64, u8)>>,
    withheld: u64,
    delivered: u64,
}

impl DelayedLabelStream {
    /// A delayed-label stream positioned at tuple 0.
    ///
    /// # Panics
    /// Panics on non-sensical specs (see [`DriftStream::new`], plus a
    /// missing-label rate outside `[0, 1)` or an empty delay range).
    pub fn new(spec: DriftStreamSpec, seed: u64) -> Self {
        DelayedLabelStream {
            inner: DriftStream::new(spec, seed),
            delay_rng: StdRng::seed_from_u64(
                seed.wrapping_mul(0xA076_1D64_78BD_642F).wrapping_add(23),
            ),
            due: std::collections::BTreeMap::new(),
            withheld: 0,
            delivered: 0,
        }
    }

    /// Emit the next `k` tuples plus the feedback due by the end of the
    /// batch. The dataset still carries the true labels (they are the
    /// ground truth the *feedback* will eventually deliver); a serving
    /// harness withholds them via
    /// `StreamTuple::rows_unlabeled_from_dataset` and applies only the
    /// returned `(id, label)` records.
    pub fn next_batch(&mut self, k: usize) -> (Dataset, Vec<(u64, u8)>) {
        let first_id = self.inner.emitted();
        let batch = self.inner.next_batch(k);
        let spec = *self.inner.spec();
        for (offset, &label) in batch.labels().iter().enumerate() {
            let id = first_id + offset as u64;
            if spec.missing_label_rate > 0.0 && self.delay_rng.gen_bool(spec.missing_label_rate) {
                self.withheld += 1;
                continue;
            }
            let delay = match spec.label_delay {
                LabelDelay::Immediate => 0,
                LabelDelay::Fixed(d) => d,
                LabelDelay::Uniform { min, max } => self.delay_rng.gen_range(min..=max),
            };
            // Due once the stream clock has moved `delay` past the tuple.
            self.due
                .entry(id.saturating_add(1).saturating_add(delay))
                .or_default()
                .push((id, label));
        }
        let now = self.inner.emitted();
        let mut feedback = Vec::new();
        while let Some(entry) = self.due.first_entry() {
            if *entry.key() > now {
                break;
            }
            feedback.extend(entry.remove());
        }
        self.delivered += feedback.len() as u64;
        (batch, feedback)
    }

    /// Tuples emitted so far (the stream clock).
    pub fn emitted(&self) -> u64 {
        self.inner.emitted()
    }

    /// The spec this stream was built from.
    pub fn spec(&self) -> &DriftStreamSpec {
        &self.inner.spec
    }

    /// Labels scheduled but not yet due.
    pub fn outstanding(&self) -> usize {
        self.due.values().map(Vec::len).sum()
    }

    /// Labels that will never arrive (the missing-label draws so far).
    pub fn withheld(&self) -> u64 {
        self.withheld
    }

    /// Feedback records delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }
}

/// A fleet of per-shard [`DriftStream`]s — the workload generator for the
/// sharded serving engine. Each shard (think region or product line) runs
/// its own independent stream, with its own RNG stream and, optionally, its
/// own drift schedule: real partitioned traffic does not drift in lockstep.
///
/// Construction picks the fleet's drift topology:
/// [`ShardedDriftStream::uniform`] for identically distributed shards
/// (throughput benchmarks), [`ShardedDriftStream::staggered`] for a drift
/// that starts in one shard and spreads on an `onset_step` cadence, or
/// [`ShardedDriftStream::new`] with hand-built specs for anything else
/// (e.g. only one region drifting, or per-region geometries).
#[derive(Debug, Clone)]
pub struct ShardedDriftStream {
    shards: Vec<DriftStream>,
}

/// splitmix64 finaliser — decorrelates per-shard seeds derived from one
/// base seed (same construction as `confair_core::repetition_seed`).
fn shard_seed(base: u64, shard: u64) -> u64 {
    let mut z = base
        .wrapping_add(shard.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl ShardedDriftStream {
    /// One stream per spec, each with a decorrelated seed derived from
    /// `seed`.
    ///
    /// # Panics
    /// Panics when `specs` is empty, or on any non-sensical spec (see
    /// [`DriftStream::new`]).
    pub fn new(specs: &[DriftStreamSpec], seed: u64) -> Self {
        assert!(!specs.is_empty(), "need at least one shard");
        ShardedDriftStream {
            shards: specs
                .iter()
                .enumerate()
                .map(|(i, spec)| DriftStream::new(*spec, shard_seed(seed, i as u64)))
                .collect(),
        }
    }

    /// `n_shards` copies of one spec — identically distributed shards with
    /// independent RNG streams (the throughput-benchmark workload).
    pub fn uniform(spec: DriftStreamSpec, n_shards: usize, seed: u64) -> Self {
        Self::new(&vec![spec; n_shards], seed)
    }

    /// Shards drifting on a staggered schedule: shard `i` keeps `spec` but
    /// begins drifting at `drift_onset + i * onset_step` — the scenario
    /// where trouble starts in one region and spreads.
    pub fn staggered(spec: DriftStreamSpec, n_shards: usize, onset_step: u64, seed: u64) -> Self {
        let specs: Vec<DriftStreamSpec> = (0..n_shards)
            .map(|i| DriftStreamSpec {
                drift_onset: spec.drift_onset.saturating_add(onset_step * i as u64),
                ..spec
            })
            .collect();
        Self::new(&specs, seed)
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Borrow one shard's stream (its clock, spec, and angle schedule).
    pub fn shard(&self, i: usize) -> &DriftStream {
        &self.shards[i]
    }

    /// Capture every shard's exact position, in shard order.
    pub fn checkpoint(&self) -> Vec<DriftStreamCheckpoint> {
        self.shards.iter().map(DriftStream::checkpoint).collect()
    }

    /// Rebuild a fleet from per-shard checkpoints (in shard order). The
    /// restored fleet's future batches are bit-identical to the originals.
    ///
    /// # Errors
    /// Returns a typed error on an empty checkpoint list or any malformed
    /// per-shard checkpoint.
    pub fn restore(ckpts: &[DriftStreamCheckpoint]) -> Result<Self, serde::Error> {
        if ckpts.is_empty() {
            return Err(serde::Error::msg("need at least one shard checkpoint"));
        }
        Ok(ShardedDriftStream {
            shards: ckpts
                .iter()
                .map(DriftStream::restore)
                .collect::<Result<Vec<_>, _>>()?,
        })
    }

    /// Advance every shard by `per_shard` tuples, returning one dataset per
    /// shard (index = shard id), each named `shard-<i>`.
    pub fn next_batches(&mut self, per_shard: usize) -> Vec<Dataset> {
        self.shards
            .iter_mut()
            .enumerate()
            .map(|(i, s)| s.next_batch_named(per_shard, &format!("shard-{i}")))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf_data::{CellIndex, MAJORITY};

    fn mean_of(d: &Dataset, cell: CellIndex, col: usize) -> f64 {
        let idx = d.cell_indices(cell);
        let m = d.numeric_matrix(Some(&idx));
        cf_linalg::vector::mean(&m.col(col))
    }

    #[test]
    fn deterministic_per_seed() {
        let spec = DriftStreamSpec::default();
        let a = DriftStream::new(spec, 7).next_batch(500);
        let b = DriftStream::new(spec, 7).next_batch(500);
        assert_eq!(a, b);
        let c = DriftStream::new(spec, 8).next_batch(500);
        assert_ne!(a, c);
    }

    #[test]
    fn batches_advance_the_clock() {
        let mut s = DriftStream::new(DriftStreamSpec::default(), 1);
        let first = s.next_batch(100);
        assert_eq!(s.emitted(), 100);
        let second = s.next_batch(100);
        assert_eq!(s.emitted(), 200);
        assert_ne!(first, second, "consecutive batches are fresh draws");
    }

    #[test]
    fn group_and_label_rates_match_spec() {
        let spec = DriftStreamSpec {
            minority_fraction: 0.3,
            positive_rate: 0.5,
            ..DriftStreamSpec::default()
        };
        let d = DriftStream::new(spec, 3).next_batch(20_000);
        let minority = d.group_count(MINORITY) as f64 / d.len() as f64;
        let positives = d.label_count(1) as f64 / d.len() as f64;
        assert!((minority - 0.3).abs() < 0.02, "minority rate {minority}");
        assert!((positives - 0.5).abs() < 0.02, "positive rate {positives}");
    }

    #[test]
    fn pre_onset_groups_share_label_direction() {
        let spec = DriftStreamSpec {
            drift_onset: 1_000_000,
            ..DriftStreamSpec::default()
        };
        let d = DriftStream::new(spec, 4).next_batch(8_000);
        for g in [MAJORITY, MINORITY] {
            let pos = mean_of(&d, CellIndex { group: g, label: 1 }, 0);
            let neg = mean_of(&d, CellIndex { group: g, label: 0 }, 0);
            assert!(pos > 0.4, "group {g} positives along +X1: {pos}");
            assert!(neg < -0.4, "group {g} negatives along -X1: {neg}");
        }
    }

    #[test]
    fn post_onset_minority_rotates_majority_does_not() {
        let spec = DriftStreamSpec {
            drift_onset: 0,
            drift_angle: std::f64::consts::FRAC_PI_2,
            ..DriftStreamSpec::default()
        };
        let d = DriftStream::new(spec, 5).next_batch(8_000);
        // Majority unchanged: labels separate along X1.
        let w_pos = mean_of(
            &d,
            CellIndex {
                group: MAJORITY,
                label: 1,
            },
            0,
        );
        assert!(w_pos > 0.4, "majority stays on +X1: {w_pos}");
        // Minority rotated 90°: labels separate along X2, not X1.
        let u_pos_x2 = mean_of(
            &d,
            CellIndex {
                group: MINORITY,
                label: 1,
            },
            1,
        );
        let u_neg_x2 = mean_of(
            &d,
            CellIndex {
                group: MINORITY,
                label: 0,
            },
            1,
        );
        assert!(
            u_pos_x2 > 0.4,
            "drifted minority positives along +X2: {u_pos_x2}"
        );
        assert!(
            u_neg_x2 < -0.4,
            "drifted minority negatives along -X2: {u_neg_x2}"
        );
    }

    #[test]
    fn transition_ramps_the_angle() {
        let spec = DriftStreamSpec {
            drift_onset: 1_000,
            transition: 1_000,
            drift_angle: 1.0,
            ..DriftStreamSpec::default()
        };
        let s = DriftStream::new(spec, 6);
        assert_eq!(s.angle_at(0), 0.0);
        assert_eq!(s.angle_at(999), 0.0);
        assert!((s.angle_at(1_500) - 0.5).abs() < 1e-12);
        assert_eq!(s.angle_at(5_000), 1.0);
    }

    #[test]
    fn reference_is_stationary_and_distinct_from_stream() {
        let spec = DriftStreamSpec {
            drift_onset: 0,
            ..DriftStreamSpec::default()
        };
        let reference = spec.reference(4_000, 9);
        // Even though the live stream drifts from tuple 0, the reference
        // sample stays on the shared pre-drift geometry.
        let u_pos = mean_of(
            &reference,
            CellIndex {
                group: MINORITY,
                label: 1,
            },
            0,
        );
        assert!(
            u_pos > 0.4,
            "reference minority positives along +X1: {u_pos}"
        );
        assert_eq!(reference.name(), "drift-reference");
    }

    #[test]
    fn noise_features_are_uninformative() {
        let spec = DriftStreamSpec {
            n_features: 5,
            ..DriftStreamSpec::default()
        };
        let d = DriftStream::new(spec, 10).next_batch(6_000);
        assert_eq!(d.num_attributes(), 5);
        for j in 2..5 {
            let pos = mean_of(
                &d,
                CellIndex {
                    group: MAJORITY,
                    label: 1,
                },
                j,
            );
            let neg = mean_of(
                &d,
                CellIndex {
                    group: MAJORITY,
                    label: 0,
                },
                j,
            );
            assert!((pos - neg).abs() < 0.1, "noise col {j} separates labels");
        }
    }

    #[test]
    fn sharded_streams_are_deterministic_and_decorrelated() {
        let spec = DriftStreamSpec::default();
        let a = ShardedDriftStream::uniform(spec, 3, 42).next_batches(200);
        let b = ShardedDriftStream::uniform(spec, 3, 42).next_batches(200);
        assert_eq!(a, b, "same seed, same fleet");
        assert_eq!(a.len(), 3);
        // Different shards draw from different RNG streams.
        assert_ne!(a[0].labels(), a[1].labels());
        // And each shard matches a standalone stream with the derived seed.
        let standalone = DriftStream::new(spec, shard_seed(42, 1)).next_batch_named(200, "shard-1");
        assert_eq!(a[1], standalone);
    }

    #[test]
    fn staggered_onsets_step_per_shard() {
        let spec = DriftStreamSpec {
            drift_onset: 1_000,
            ..DriftStreamSpec::default()
        };
        let fleet = ShardedDriftStream::staggered(spec, 3, 500, 7);
        assert_eq!(fleet.shard_count(), 3);
        assert_eq!(fleet.shard(0).spec().drift_onset, 1_000);
        assert_eq!(fleet.shard(1).spec().drift_onset, 1_500);
        assert_eq!(fleet.shard(2).spec().drift_onset, 2_000);
        // Shard 1 has not drifted at t=1200 while shard 0 has.
        assert!(fleet.shard(0).angle_at(1_200) > 0.0);
        assert_eq!(fleet.shard(1).angle_at(1_200), 0.0);
    }

    #[test]
    fn checkpoint_resumes_at_the_exact_rng_position() {
        let spec = DriftStreamSpec {
            drift_onset: 500,
            ..DriftStreamSpec::default()
        };
        let mut live = DriftStream::new(spec, 21);
        live.next_batch(777); // arbitrary mid-batch-size position

        // Round-trip the checkpoint through its JSON document.
        let doc = serde_json::to_string(&live.checkpoint()).unwrap();
        let parsed: DriftStreamCheckpoint = serde_json::from_str(&doc).unwrap();
        let mut resumed = DriftStream::restore(&parsed).unwrap();

        assert_eq!(resumed.emitted(), 777);
        assert_eq!(resumed.spec(), live.spec());
        for k in [1usize, 100, 333] {
            assert_eq!(
                live.next_batch(k),
                resumed.next_batch(k),
                "batch of {k} after resume"
            );
        }
    }

    #[test]
    fn corrupted_stream_checkpoints_are_typed_errors() {
        let stream = DriftStream::new(DriftStreamSpec::default(), 1);
        let good = stream.checkpoint();

        let mut short = good.clone();
        short.rng_state.pop();
        assert!(DriftStream::restore(&short).is_err());

        let mut garbled = good.clone();
        garbled.rng_state[2] = "not-hex".into();
        assert!(DriftStream::restore(&garbled).is_err());

        let mut bad_spec = good;
        bad_spec.spec.minority_fraction = 1.5;
        assert!(DriftStream::restore(&bad_spec).is_err());
    }

    #[test]
    fn sharded_fleet_checkpoint_resumes_every_shard() {
        let spec = DriftStreamSpec::default();
        let mut live = ShardedDriftStream::staggered(spec, 3, 400, 13);
        live.next_batches(250);

        let mut resumed = ShardedDriftStream::restore(&live.checkpoint()).unwrap();
        assert_eq!(resumed.shard_count(), 3);
        assert_eq!(live.next_batches(200), resumed.next_batches(200));

        assert!(ShardedDriftStream::restore(&[]).is_err());
    }

    #[test]
    fn delayed_stream_geometry_matches_plain_stream() {
        // Delay draws must come from an independent RNG stream: the
        // emitted tuples are bit-identical to the plain generator's.
        let spec = DriftStreamSpec {
            label_delay: LabelDelay::Uniform { min: 5, max: 300 },
            missing_label_rate: 0.2,
            ..DriftStreamSpec::default()
        };
        let (batch, _) = DelayedLabelStream::new(spec, 9).next_batch(400);
        let plain = DriftStream::new(spec, 9).next_batch(400);
        assert_eq!(batch, plain);
    }

    #[test]
    fn immediate_delay_delivers_within_the_batch() {
        let spec = DriftStreamSpec::default(); // Immediate, nothing missing
        let mut s = DelayedLabelStream::new(spec, 3);
        let (batch, feedback) = s.next_batch(250);
        assert_eq!(feedback.len(), 250);
        assert_eq!(s.outstanding(), 0);
        // Ids are stream positions and labels are the batch's own.
        for &(id, label) in &feedback {
            assert_eq!(label, batch.labels()[id as usize]);
        }
    }

    #[test]
    fn fixed_delay_trails_by_exactly_the_delay() {
        let spec = DriftStreamSpec {
            label_delay: LabelDelay::Fixed(100),
            ..DriftStreamSpec::default()
        };
        let mut s = DelayedLabelStream::new(spec, 4);
        let (_, feedback) = s.next_batch(100);
        assert!(feedback.is_empty(), "nothing due before the delay");
        assert_eq!(s.outstanding(), 100);
        let (_, feedback) = s.next_batch(100);
        // After 200 emissions, ids 0..=99 are due (id + 1 + 100 <= 200).
        assert_eq!(feedback.len(), 100);
        assert!(feedback.iter().all(|&(id, _)| id < 100));
        assert_eq!(s.delivered(), 100);
    }

    #[test]
    fn missing_labels_are_withheld_forever() {
        let spec = DriftStreamSpec {
            missing_label_rate: 0.3,
            ..DriftStreamSpec::default()
        };
        let mut s = DelayedLabelStream::new(spec, 5);
        let (_, feedback) = s.next_batch(10_000);
        let rate = 1.0 - feedback.len() as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.02, "withheld rate {rate}");
        assert_eq!(s.withheld() + s.delivered(), 10_000);
        assert_eq!(s.outstanding(), 0, "Immediate delay leaves nothing due");
    }

    #[test]
    fn label_delay_round_trips_through_spec_serde() {
        for delay in [
            LabelDelay::Immediate,
            LabelDelay::Fixed(2_000),
            LabelDelay::Uniform { min: 10, max: 99 },
        ] {
            let spec = DriftStreamSpec {
                label_delay: delay,
                missing_label_rate: 0.05,
                ..DriftStreamSpec::default()
            };
            let json = serde_json::to_string(&spec).unwrap();
            let parsed: DriftStreamSpec = serde_json::from_str(&json).unwrap();
            assert_eq!(parsed, spec);
        }
    }

    /// Pin the K-ary geometry: per-cell arrival rates, distinct offset
    /// sub-regions, shared pre-onset label direction, and single-cell
    /// drift — the contract the K-ary monitoring suite leans on.
    #[test]
    fn kary_geometry_is_pinned() {
        let spec = DriftStreamSpec {
            groups: 4,
            minority_fraction: 0.6,
            drift_onset: 1_000_000,
            ..DriftStreamSpec::default()
        };
        let d = DriftStream::new(spec, 17).next_batch(24_000);
        // Cell 0 keeps 1 - minority_fraction; cells 1..K split the rest
        // uniformly.
        let rate = |g: u8| d.groups().iter().filter(|&&x| x == g).count() as f64 / d.len() as f64;
        assert!((rate(0) - 0.4).abs() < 0.02, "cell 0 rate {}", rate(0));
        for g in 1..4u8 {
            assert!((rate(g) - 0.2).abs() < 0.02, "cell {g} rate {}", rate(g));
        }
        // Pre-onset every cell separates labels along +X1 ...
        for g in 0..4u8 {
            let pos = mean_of(&d, CellIndex { group: g, label: 1 }, 0);
            let neg = mean_of(&d, CellIndex { group: g, label: 0 }, 0);
            assert!(pos - neg > 0.8, "cell {g} separates along X1");
        }
        // ... and non-baseline cells sit in distinct offset sub-regions:
        // cell g's centroid is minority_offset away at angle π·g/K.
        for g in 1..4u8 {
            let phi = std::f64::consts::PI * f64::from(g) / 4.0;
            let idx = d.group_indices(g);
            let m = d.numeric_matrix(Some(&idx));
            let cx = cf_linalg::vector::mean(&m.col(0));
            let cy = cf_linalg::vector::mean(&m.col(1));
            assert!(
                (cx - 1.1 * phi.cos()).abs() < 0.1,
                "cell {g} X1 centroid {cx}"
            );
            assert!(
                (cy - 1.1 * phi.sin()).abs() < 0.1,
                "cell {g} X2 centroid {cy}"
            );
        }

        // Single-cell drift: only cell 2 rotates, every other cell keeps
        // the shared label direction.
        let drifted = DriftStreamSpec {
            groups: 4,
            drift_group: 2,
            drift_onset: 0,
            drift_angle: std::f64::consts::FRAC_PI_2,
            minority_fraction: 0.6,
            ..DriftStreamSpec::default()
        };
        let d = DriftStream::new(drifted, 18).next_batch(24_000);
        for g in [0u8, 1, 3] {
            let pos = mean_of(&d, CellIndex { group: g, label: 1 }, 0);
            let neg = mean_of(&d, CellIndex { group: g, label: 0 }, 0);
            assert!(pos - neg > 0.8, "undrifted cell {g} stays on X1");
        }
        let pos_x2 = mean_of(&d, CellIndex { group: 2, label: 1 }, 1);
        let neg_x2 = mean_of(&d, CellIndex { group: 2, label: 0 }, 1);
        assert!(pos_x2 - neg_x2 > 0.8, "drifted cell 2 separates along X2");
        let pos_x1 = mean_of(&d, CellIndex { group: 2, label: 1 }, 0);
        let neg_x1 = mean_of(&d, CellIndex { group: 2, label: 0 }, 0);
        assert!(
            (pos_x1 - neg_x1).abs() < 0.2,
            "cell 2 no longer separates on X1"
        );
    }

    #[test]
    fn staggered_cell_onsets_step_cyclically_from_the_drift_group() {
        let spec = DriftStreamSpec {
            groups: 4,
            drift_group: 2,
            drift_onset: 1_000,
            onset_step: 500,
            minority_fraction: 0.6,
            ..DriftStreamSpec::default()
        };
        let s = DriftStream::new(spec, 0);
        assert_eq!(s.cell_onset(2), 1_000);
        assert_eq!(s.cell_onset(3), 1_500);
        assert_eq!(s.cell_onset(0), 2_000);
        assert_eq!(s.cell_onset(1), 2_500);
        assert_eq!(s.cell_angle_at(3, 1_400), 0.0);
        assert!(s.cell_angle_at(3, 1_600) > 0.0);

        // onset_step == 0 confines the drift to drift_group forever.
        let confined = DriftStream::new(
            DriftStreamSpec {
                onset_step: 0,
                ..spec
            },
            0,
        );
        assert_eq!(confined.cell_onset(2), 1_000);
        for g in [0u8, 1, 3] {
            assert_eq!(confined.cell_onset(g), u64::MAX, "cell {g} never drifts");
            assert_eq!(confined.cell_angle_at(g, u64::MAX - 1), 0.0);
        }
    }

    #[test]
    fn binary_specs_without_kary_knobs_still_parse() {
        // Pre-K-ary spec documents carry no `groups` / `onset_step`; they
        // must keep restoring as the binary single-drift streams they
        // described.
        let mut doc = serde_json::from_str::<serde::Value>(
            &serde_json::to_string(&DriftStreamSpec::default()).unwrap(),
        )
        .unwrap();
        if let serde::Value::Object(fields) = &mut doc {
            fields.retain(|(k, _)| k != "groups" && k != "onset_step");
        }
        let parsed: DriftStreamSpec =
            serde::Deserialize::from_value(&doc).expect("pre-K-ary spec documents keep parsing");
        assert_eq!(parsed, DriftStreamSpec::default());
        assert_eq!(parsed.groups, 2);
        assert_eq!(parsed.onset_step, 0);
    }

    #[test]
    #[should_panic]
    fn drift_group_outside_cells_panics() {
        let _ = DriftStream::new(
            DriftStreamSpec {
                groups: 3,
                drift_group: 3,
                ..DriftStreamSpec::default()
            },
            0,
        );
    }

    #[test]
    fn specs_without_label_knobs_still_parse() {
        // Stream checkpoints carry no version field, so specs saved before
        // the label-feedback knobs existed must restore as the
        // fully-labeled regime they described.
        let mut doc = serde_json::from_str::<serde::Value>(
            &serde_json::to_string(&DriftStreamSpec::default()).unwrap(),
        )
        .unwrap();
        if let serde::Value::Object(fields) = &mut doc {
            fields.retain(|(k, _)| k != "label_delay" && k != "missing_label_rate");
        }
        let parsed: DriftStreamSpec =
            serde::Deserialize::from_value(&doc).expect("pre-knob spec documents keep parsing");
        assert_eq!(parsed, DriftStreamSpec::default());
        assert_eq!(parsed.label_delay, LabelDelay::Immediate);
        assert_eq!(parsed.missing_label_rate, 0.0);
    }

    #[test]
    #[should_panic]
    fn bad_missing_rate_panics() {
        let _ = DelayedLabelStream::new(
            DriftStreamSpec {
                missing_label_rate: 1.0,
                ..DriftStreamSpec::default()
            },
            0,
        );
    }

    #[test]
    #[should_panic]
    fn empty_delay_range_panics() {
        let _ = DelayedLabelStream::new(
            DriftStreamSpec {
                label_delay: LabelDelay::Uniform { min: 9, max: 3 },
                ..DriftStreamSpec::default()
            },
            0,
        );
    }

    #[test]
    #[should_panic]
    fn empty_shard_fleet_panics() {
        let _ = ShardedDriftStream::new(&[], 0);
    }

    #[test]
    #[should_panic]
    fn bad_fraction_panics() {
        let _ = DriftStream::new(
            DriftStreamSpec {
                minority_fraction: 1.5,
                ..DriftStreamSpec::default()
            },
            0,
        );
    }
}
