//! Synthetic classification generator and the Syn1–Syn5 drift datasets.
//!
//! [`SynSpec::generate`] mirrors scikit-learn's `make_classification` recipe
//! (per-class Gaussian clusters, class separation, flip-y label noise,
//! informative + noise features) and adds the paper's group structure: the
//! minority's label-conditional cluster directions are *rotated* against the
//! majority's in the informative plane. With the two groups occupying the
//! same region of space, a single linear model cannot conform to both —
//! the severe-drift regime where DiffFair shines (Fig. 11).

use cf_data::{Column, Dataset};
use rand::{rngs::StdRng, seq::SliceRandom, SeedableRng};

use crate::normal_vec;

/// Specification for one synthetic drift dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SynSpec {
    /// Majority tuples (paper: 8,000).
    pub n_majority: usize,
    /// Minority tuples (paper: 3,000).
    pub n_minority: usize,
    /// Total features; the first two are informative, the rest noise.
    pub n_features: usize,
    /// Distance between class centers along the group's label direction.
    pub class_sep: f64,
    /// Angle (radians) between the majority's and the minority's
    /// label-direction in the informative plane. π = fully opposed labels.
    pub drift_angle: f64,
    /// Fraction of labels flipped at random (scikit-learn's `flip_y`).
    pub flip_y: f64,
    /// Within-cluster standard deviation (majority).
    pub cluster_std: f64,
    /// Offset of the minority's centre from the majority's, orthogonal to
    /// the informative directions (Fig. 10: the orange group concentrates in
    /// a sub-region of the blue group's support).
    pub minority_offset: f64,
    /// Minority cluster std as a fraction of `cluster_std` (the orange
    /// clusters in Fig. 10 are visibly tighter).
    pub minority_std_factor: f64,
}

impl Default for SynSpec {
    fn default() -> Self {
        Self {
            n_majority: 8_000,
            n_minority: 3_000,
            n_features: 2,
            class_sep: 1.4,
            drift_angle: std::f64::consts::PI,
            flip_y: 0.01,
            cluster_std: 0.55,
            minority_offset: 1.3,
            minority_std_factor: 0.85,
        }
    }
}

impl SynSpec {
    /// The five Syn datasets of §IV-B: same sizes, increasing-to-maximal
    /// drift angles so the family spans "hard" to "impossible" for a single
    /// model. `variant` ∈ 1..=5.
    ///
    /// # Panics
    /// Panics for variants outside `1..=5`.
    pub fn syn(variant: u8) -> SynSpec {
        assert!((1..=5).contains(&variant), "Syn variants are 1..=5");
        let angle_deg = match variant {
            1 => 180.0, // labels fully opposed (Fig. 10's geometry)
            2 => 150.0,
            3 => 120.0,
            4 => 100.0,
            _ => 90.0,
        };
        SynSpec {
            drift_angle: angle_deg * std::f64::consts::PI / 180.0,
            ..SynSpec::default()
        }
    }

    /// Generate the dataset. Deterministic per `seed`; the dataset is named
    /// `Syn<k>` when produced via [`SynSpec::syn`]-style specs or `Syn`
    /// otherwise.
    pub fn generate(&self, name: &str, seed: u64) -> Dataset {
        assert!(
            self.n_features >= 2,
            "need at least the 2 informative features"
        );
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9).wrapping_add(7));

        // Majority label direction: +e1. Minority: rotated by drift_angle in
        // the (e1, e2) plane. The minority is additionally concentrated in a
        // tighter, offset sub-region (perpendicular to its own label
        // direction, so the offset carries no label signal for the group) —
        // matching Fig. 10's geometry.
        let w_dir = [1.0, 0.0];
        let u_dir = [self.drift_angle.cos(), self.drift_angle.sin()];
        let u_offset = [
            -u_dir[1] * self.minority_offset,
            u_dir[0] * self.minority_offset,
        ];

        let mut rows: Vec<Vec<f64>> = Vec::with_capacity(self.n_majority + self.n_minority);
        let mut labels: Vec<u8> = Vec::with_capacity(rows.capacity());
        let mut groups: Vec<u8> = Vec::with_capacity(rows.capacity());

        let emit = |rng: &mut StdRng,
                    rows: &mut Vec<Vec<f64>>,
                    labels: &mut Vec<u8>,
                    groups: &mut Vec<u8>,
                    group: u8,
                    dir: [f64; 2],
                    offset: [f64; 2],
                    std: f64,
                    count: usize| {
            for k in 0..count {
                let y = (k % 2) as u8; // 50/50 labels within each group
                let sign = if y == 1 { 1.0 } else { -1.0 };
                let mut x = normal_vec(rng, self.n_features);
                for v in x.iter_mut() {
                    *v *= std;
                }
                x[0] += sign * self.class_sep * 0.5 * dir[0] + offset[0];
                x[1] += sign * self.class_sep * 0.5 * dir[1] + offset[1];
                rows.push(x);
                labels.push(y);
                groups.push(group);
            }
        };
        emit(
            &mut rng,
            &mut rows,
            &mut labels,
            &mut groups,
            0,
            w_dir,
            [0.0, 0.0],
            self.cluster_std,
            self.n_majority,
        );
        emit(
            &mut rng,
            &mut rows,
            &mut labels,
            &mut groups,
            1,
            u_dir,
            u_offset,
            self.cluster_std * self.minority_std_factor,
            self.n_minority,
        );

        // flip_y label noise.
        let n = labels.len();
        let flips = ((n as f64) * self.flip_y).round() as usize;
        let mut idx: Vec<usize> = (0..n).collect();
        idx.shuffle(&mut rng);
        for &i in idx.iter().take(flips) {
            labels[i] ^= 1;
        }

        // Shuffle tuple order so splits don't see generation order.
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(&mut rng);
        let rows: Vec<Vec<f64>> = order
            .iter()
            .map(|&i| std::mem::take(&mut rows[i]))
            .collect();
        let labels: Vec<u8> = order.iter().map(|&i| labels[i]).collect();
        let groups: Vec<u8> = order.iter().map(|&i| groups[i]).collect();

        let col_names: Vec<String> = (0..self.n_features)
            .map(|j| format!("X{}", j + 1))
            .collect();
        let columns: Vec<Column> = (0..self.n_features)
            .map(|j| Column::Numeric(rows.iter().map(|r| r[j]).collect()))
            .collect();
        Dataset::new(name, col_names, columns, labels, groups)
            .expect("generated buffers are consistent")
    }
}

/// Generate `Syn<variant>` at the paper's sizes (11,000 tuples).
pub fn syn_drift(variant: u8, seed: u64) -> Dataset {
    SynSpec::syn(variant).generate(&format!("Syn{variant}"), seed ^ u64::from(variant))
}

/// Generate `Syn<variant>` scaled to `scale·n` tuples (laptop runs).
pub fn syn_drift_scaled(variant: u8, scale: f64, seed: u64) -> Dataset {
    assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
    let base = SynSpec::syn(variant);
    let spec = SynSpec {
        n_majority: ((base.n_majority as f64) * scale).round().max(40.0) as usize,
        n_minority: ((base.n_minority as f64) * scale).round().max(20.0) as usize,
        ..base
    };
    spec.generate(&format!("Syn{variant}"), seed ^ u64::from(variant))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf_data::{CellIndex, MAJORITY, MINORITY};

    #[test]
    fn paper_sizes() {
        let d = syn_drift(1, 0);
        assert_eq!(d.len(), 11_000);
        assert_eq!(d.group_count(MAJORITY), 8_000);
        assert_eq!(d.group_count(MINORITY), 3_000);
    }

    #[test]
    fn labels_balanced_within_groups() {
        let d = syn_drift(2, 1);
        for g in [MAJORITY, MINORITY] {
            let pos = d.cell_count(CellIndex { group: g, label: 1 });
            let total = d.group_count(g);
            let rate = pos as f64 / total as f64;
            assert!((rate - 0.5).abs() < 0.03, "group {g} positive rate {rate}");
        }
    }

    #[test]
    fn syn1_label_directions_are_opposed() {
        let d = syn_drift(1, 3);
        // Mean X1 of majority positives is +sep/2; of minority positives −sep/2.
        let wp = d.cell_indices(CellIndex {
            group: MAJORITY,
            label: 1,
        });
        let up = d.cell_indices(CellIndex {
            group: MINORITY,
            label: 1,
        });
        let w_mean = cf_linalg::vector::mean(d.numeric_matrix(Some(&wp)).col(0).as_slice());
        let u_mean = cf_linalg::vector::mean(d.numeric_matrix(Some(&up)).col(0).as_slice());
        assert!(w_mean > 0.4, "majority positives on +X1: {w_mean}");
        assert!(u_mean < -0.4, "minority positives on −X1: {u_mean}");
    }

    #[test]
    fn syn5_directions_are_orthogonal() {
        let d = syn_drift(5, 4);
        let up = d.cell_indices(CellIndex {
            group: MINORITY,
            label: 1,
        });
        let m = d.numeric_matrix(Some(&up));
        let mean_x1 = cf_linalg::vector::mean(m.col(0).as_slice());
        let mean_x2 = cf_linalg::vector::mean(m.col(1).as_slice());
        // u_dir = (0, 1): labels separate along X2; the group offset sits
        // along −X1 (perpendicular to the label direction).
        assert!(mean_x2 > 0.4, "minority positives along +X2: {mean_x2}");
        assert!(mean_x1 < -0.4, "minority offset along -X1: {mean_x1}");
    }

    #[test]
    fn groups_share_the_informative_axis() {
        // For Syn1 the offset is orthogonal to X1, so both groups' X1
        // marginals are centred: the drift is in the label-conditionals.
        let d = syn_drift(1, 5);
        let w = d.group_indices(MAJORITY);
        let u = d.group_indices(MINORITY);
        let wm = cf_linalg::vector::mean(d.numeric_matrix(Some(&w)).col(0).as_slice());
        let um = cf_linalg::vector::mean(d.numeric_matrix(Some(&u)).col(0).as_slice());
        assert!(wm.abs() < 0.1 && um.abs() < 0.1, "{wm} vs {um}");
    }

    #[test]
    fn minority_is_concentrated_sub_region() {
        let d = syn_drift(1, 6);
        let w = d.group_indices(MAJORITY);
        let u = d.group_indices(MINORITY);
        let w_var = cf_linalg::vector::variance(d.numeric_matrix(Some(&w)).col(1).as_slice());
        let u_var = cf_linalg::vector::variance(d.numeric_matrix(Some(&u)).col(1).as_slice());
        assert!(
            u_var < w_var,
            "minority spread {u_var} < majority spread {w_var}"
        );
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        assert_eq!(syn_drift(3, 9), syn_drift(3, 9));
        assert_ne!(syn_drift(3, 9), syn_drift(3, 10));
    }

    #[test]
    fn scaled_variant_shrinks() {
        let d = syn_drift_scaled(1, 0.1, 0);
        assert_eq!(d.len(), 1_100);
    }

    #[test]
    fn extra_noise_features_supported() {
        let spec = SynSpec {
            n_features: 6,
            n_majority: 100,
            n_minority: 50,
            ..SynSpec::default()
        };
        let d = spec.generate("Syn", 0);
        assert_eq!(d.num_attributes(), 6);
        assert_eq!(d.numeric_column_indices().len(), 6);
    }

    #[test]
    #[should_panic]
    fn bad_variant_panics() {
        let _ = SynSpec::syn(6);
    }
}
