//! # cf-datasets
//!
//! Workload generators for the ConFair reproduction. Four families:
//!
//! * [`toy`] — the 2-D two-group illustration of the paper's Fig. 1.
//! * [`stream`] — time-ordered drifting streams with a configurable
//!   group-conditional drift onset, feeding the `cf-stream` monitoring
//!   subsystem.
//! * [`synthgen`] — a `make_classification`-equivalent generator and the
//!   Syn1–Syn5 severe-drift datasets of Fig. 10/11 (majority and minority
//!   share the feature space but their label-conditional distributions are
//!   rotated against each other, so no single linear model conforms to both).
//! * [`realsim`] — seeded simulators matched to the Fig. 4 statistics of the
//!   seven real-world benchmarks (MEPS, LSAC, Credit, ACSP/H/E/I). See
//!   DESIGN.md §1 for why these substitutions preserve the behaviours the
//!   evaluation exercises.
//!
//! All generators are deterministic given a seed.

#![warn(missing_docs)]

pub mod realsim;
pub mod stream;
pub mod synthgen;
pub mod toy;

pub use realsim::RealWorldSpec;
pub use stream::{DriftStream, DriftStreamCheckpoint, DriftStreamSpec, ShardedDriftStream};
pub use synthgen::SynSpec;

use rand::{rngs::StdRng, Rng};

/// Sample a standard normal via Box–Muller (keeps the dependency surface to
/// `rand`'s uniform primitives only).
pub(crate) fn sample_normal(rng: &mut StdRng) -> f64 {
    // Box–Muller transform; u1 is kept away from 0 for a finite log.
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Fill a vector with iid standard normals.
pub(crate) fn normal_vec(rng: &mut StdRng, d: usize) -> Vec<f64> {
    (0..d).map(|_| sample_normal(rng)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn normal_sampler_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let samples: Vec<f64> = (0..20_000).map(|_| sample_normal(&mut rng)).collect();
        let mean = cf_linalg::vector::mean(&samples);
        let var = cf_linalg::vector::variance(&samples);
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn normal_vec_length() {
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(normal_vec(&mut rng, 5).len(), 5);
    }
}
