//! Property-based tests for the linear-algebra substrate.

use cf_linalg::{cholesky, covariance, eigen_symmetric, standardize, Matrix};
use proptest::prelude::*;

/// Strategy: a small matrix with bounded entries (avoids overflow-scale values
/// where float error dominates the assertions).
fn small_matrix(max_dim: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-100.0..100.0f64, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data))
    })
}

/// Strategy: a random symmetric PSD matrix built as BᵀB.
fn psd_matrix(max_dim: usize) -> impl Strategy<Value = Matrix> {
    (2..=max_dim).prop_flat_map(|d| {
        proptest::collection::vec(-10.0..10.0f64, d * d).prop_map(move |data| {
            let b = Matrix::from_vec(d, d, data);
            let mut a = b.transpose().matmul(&b).unwrap();
            // Add d·I so the matrix is safely positive definite.
            for i in 0..d {
                a[(i, i)] += d as f64;
            }
            a
        })
    })
}

proptest! {
    #[test]
    fn transpose_is_involution(m in small_matrix(6)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_identity_left_right(m in small_matrix(6)) {
        let il = Matrix::identity(m.rows());
        let ir = Matrix::identity(m.cols());
        let left = il.matmul(&m).unwrap();
        let right = m.matmul(&ir).unwrap();
        prop_assert_eq!(&left, &m);
        prop_assert_eq!(&right, &m);
    }

    #[test]
    fn matvec_agrees_with_matmul(m in small_matrix(5), seed in 0u64..1000) {
        // Deterministic pseudo-vector from the seed.
        let v: Vec<f64> = (0..m.cols()).map(|i| ((seed as f64) + i as f64).sin()).collect();
        let as_vec = m.matvec(&v).unwrap();
        let as_mat = m
            .matmul(&Matrix::from_vec(v.len(), 1, v.clone()))
            .unwrap();
        for (a, b) in as_vec.iter().zip(as_mat.as_slice()) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn covariance_is_symmetric_psd_diagonal(m in small_matrix(5)) {
        prop_assume!(m.rows() >= 2);
        let c = covariance(&m).unwrap();
        prop_assert!(c.is_symmetric(1e-9 * (1.0 + c.max_abs())));
        // Variances on the diagonal are non-negative.
        for i in 0..c.rows() {
            prop_assert!(c[(i, i)] >= -1e-9);
        }
    }

    #[test]
    fn eigen_reconstructs_psd(a in psd_matrix(6)) {
        let e = eigen_symmetric(&a).unwrap();
        let n = e.values.len();
        let mut lam = Matrix::zeros(n, n);
        for i in 0..n {
            lam[(i, i)] = e.values[i];
        }
        let r = e
            .vectors
            .matmul(&lam)
            .unwrap()
            .matmul(&e.vectors.transpose())
            .unwrap();
        let scale = 1.0 + a.max_abs();
        for i in 0..n {
            for j in 0..n {
                prop_assert!(
                    (r[(i, j)] - a[(i, j)]).abs() < 1e-7 * scale,
                    "entry ({}, {}) differs: {} vs {}", i, j, r[(i, j)], a[(i, j)]
                );
            }
        }
        // Eigenvalues sorted descending.
        for w in e.values.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-12);
        }
        // PSD input => non-negative eigenvalues.
        prop_assert!(e.values.iter().all(|&v| v > -1e-7 * scale));
    }

    #[test]
    fn cholesky_reconstructs(a in psd_matrix(6)) {
        let ch = cholesky(&a).unwrap();
        let r = ch.l.matmul(&ch.l.transpose()).unwrap();
        let scale = 1.0 + a.max_abs();
        for i in 0..a.rows() {
            for j in 0..a.cols() {
                prop_assert!((r[(i, j)] - a[(i, j)]).abs() < 1e-7 * scale);
            }
        }
    }

    #[test]
    fn spd_solve_then_multiply_roundtrips(a in psd_matrix(5), seed in 0u64..1000) {
        let n = a.rows();
        let b: Vec<f64> = (0..n).map(|i| ((seed + i as u64) as f64).cos() * 10.0).collect();
        let x = cf_linalg::solve_spd(&a, &b).unwrap();
        let back = a.matvec(&x).unwrap();
        for (bi, ri) in b.iter().zip(&back) {
            prop_assert!((bi - ri).abs() < 1e-6 * (1.0 + a.max_abs()));
        }
    }

    #[test]
    fn standardize_centers_columns(m in small_matrix(5)) {
        prop_assume!(m.rows() >= 2);
        let (z, _) = standardize(&m);
        for j in 0..z.cols() {
            let col = z.col(j);
            let mean: f64 = col.iter().sum::<f64>() / col.len() as f64;
            prop_assert!(mean.abs() < 1e-9);
        }
    }

    #[test]
    fn tiled_matmul_is_bit_identical_to_naive_across_remainder_lanes(
        m in 1usize..7,
        k in 1usize..9,
        lanes in 0usize..4,
        tiles in 0usize..3,
        a_data in proptest::collection::vec(-8.0..8.0f64, 6 * 8),
        b_data in proptest::collection::vec(-8.0..8.0f64, 8 * 11),
    ) {
        // The register-tiled matmul accumulates every output element
        // k-ascending exactly like the naive triple loop, so the pin is
        // bit equality — and `n = 4·tiles + lanes` drives every remainder
        // width (n % 4 ∈ {0,1,2,3}) directly, where a tiling bug would
        // hide from round-dimension tests.
        let n = 4 * tiles + lanes;
        prop_assume!(n >= 1);
        let a = Matrix::from_vec(m, k, a_data[..m * k].to_vec());
        let b = Matrix::from_vec(k, n, b_data[..k * n].to_vec());
        let fast = a.matmul(&b).unwrap();
        for i in 0..m {
            for j in 0..n {
                let mut slow = 0.0;
                for kk in 0..k {
                    slow += a[(i, kk)] * b[(kk, j)];
                }
                prop_assert_eq!(
                    fast[(i, j)].to_bits(),
                    slow.to_bits(),
                    "({},{}) of {}x{}x{}: {} vs {}",
                    i, j, m, k, n, fast[(i, j)], slow
                );
            }
        }
    }

    #[test]
    fn affine_margins_is_bit_identical_to_per_row_dot(
        d in 1usize..9,
        lanes in 0usize..4,
        tiles in 0usize..3,
        data in proptest::collection::vec(-8.0..8.0f64, 11 * 8),
        coef_data in proptest::collection::vec(-3.0..3.0f64, 8),
        bias in -2.0..2.0f64,
    ) {
        // Same construction for the 4-row scoring tile: `rows = 4·tiles +
        // lanes` sweeps the trailing-row lanes, and each row must equal
        // its per-row `dot + bias` to the bit (the kernel's whole safety
        // argument for the logistic serving path).
        let rows = 4 * tiles + lanes;
        prop_assume!(rows >= 1);
        let x = Matrix::from_vec(rows, d, data[..rows * d].to_vec());
        let coef = &coef_data[..d];
        let fast = x.affine_margins(coef, bias).unwrap();
        for (i, row) in x.iter_rows().enumerate() {
            let slow = cf_linalg::vector::dot(coef, row) + bias;
            prop_assert_eq!(
                fast[i].to_bits(),
                slow.to_bits(),
                "rows={} d={} row {}: {} vs {}",
                rows, d, i, fast[i], slow
            );
        }
    }
}
