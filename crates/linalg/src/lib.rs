//! # cf-linalg
//!
//! Dense linear-algebra substrate for the ConFair reproduction.
//!
//! The paper's profiling primitive (conformance constraints) derives linear
//! projections from the eigenstructure of the attribute covariance matrix,
//! the learners need matrix/vector kernels, and the dataset simulators need
//! Cholesky factors to sample correlated Gaussians. Everything here is
//! implemented from scratch on plain `f64` buffers: the attribute counts in
//! the paper's workloads are small (m ≤ ~40), so exact dense algorithms
//! (Jacobi eigendecomposition, unblocked Cholesky) are the right tool —
//! dependable, deterministic, and easily audited.
//!
//! Modules:
//! * [`matrix`] — row-major dense [`Matrix`] with the kernels used downstream.
//! * [`vector`] — slice-level helpers (dot, axpy, norms, argmax).
//! * [`stats`] — column means, (weighted) covariance, standardisation.
//! * [`eigen`] — cyclic Jacobi eigendecomposition for symmetric matrices.
//! * [`mod@cholesky`] — LLᵀ factorisation and SPD solves.

pub mod cholesky;
pub mod eigen;
pub mod matrix;
pub mod stats;
pub mod vector;

pub use cholesky::{cholesky, solve_spd, Cholesky};
pub use eigen::{eigen_symmetric, Eigen};
pub use matrix::Matrix;
pub use stats::{
    column_means, covariance, standardize, weighted_column_means, weighted_covariance, Standardizer,
};

/// Error type for linear-algebra operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Operand shapes are incompatible for the requested operation.
    ShapeMismatch {
        /// Human-readable description of the expected shape relation.
        expected: String,
        /// What was actually supplied.
        got: String,
    },
    /// The matrix is not (numerically) symmetric positive definite.
    NotPositiveDefinite,
    /// The input matrix must be square.
    NotSquare,
    /// The operation requires a non-empty input.
    Empty,
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::ShapeMismatch { expected, got } => {
                write!(f, "shape mismatch: expected {expected}, got {got}")
            }
            LinalgError::NotPositiveDefinite => {
                write!(f, "matrix is not symmetric positive definite")
            }
            LinalgError::NotSquare => write!(f, "matrix must be square"),
            LinalgError::Empty => write!(f, "operation requires non-empty input"),
        }
    }
}

impl std::error::Error for LinalgError {}

/// Convenient result alias for fallible linalg operations.
pub type Result<T> = std::result::Result<T, LinalgError>;
