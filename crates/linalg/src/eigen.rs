//! Cyclic Jacobi eigendecomposition for symmetric matrices.
//!
//! Conformance-constraint discovery needs all eigenpairs of the (small)
//! attribute covariance matrix: each eigenvector becomes a candidate
//! projection and its eigenvalue is the projection variance. Jacobi is exact,
//! unconditionally stable for symmetric input, and trivially deterministic —
//! the right choice for m ≤ ~40 attributes (cost O(m³) per sweep, a handful
//! of sweeps to converge).

use crate::{matrix::Matrix, LinalgError, Result};

/// Eigendecomposition of a symmetric matrix: `a ≈ V diag(λ) Vᵀ`.
#[derive(Debug, Clone)]
pub struct Eigen {
    /// Eigenvalues, sorted descending.
    pub values: Vec<f64>,
    /// Eigenvectors as matrix columns; column `j` pairs with `values[j]`.
    pub vectors: Matrix,
}

impl Eigen {
    /// Eigenvector paired with `values[j]`, copied out as a `Vec`.
    pub fn vector(&self, j: usize) -> Vec<f64> {
        self.vectors.col(j)
    }
}

/// Decompose a symmetric matrix with the cyclic Jacobi method.
///
/// `a` must be square and symmetric (checked up to `1e-8`). Eigenvalues are
/// returned in descending order with matching eigenvector columns.
pub fn eigen_symmetric(a: &Matrix) -> Result<Eigen> {
    if a.rows() != a.cols() {
        return Err(LinalgError::NotSquare);
    }
    let n = a.rows();
    if n == 0 {
        return Err(LinalgError::Empty);
    }
    if !a.is_symmetric(1e-8 * (1.0 + a.max_abs())) {
        return Err(LinalgError::ShapeMismatch {
            expected: "symmetric matrix".to_string(),
            got: "asymmetric entries".to_string(),
        });
    }

    let mut m = a.clone();
    let mut v = Matrix::identity(n);
    // Convergence threshold scaled to the matrix magnitude so near-zero
    // covariance blocks (constant attributes) terminate immediately.
    let scale = m.max_abs().max(1e-300);
    let tol = 1e-14 * scale;
    const MAX_SWEEPS: usize = 64;

    for _ in 0..MAX_SWEEPS {
        let off = off_diagonal_norm(&m);
        if off <= tol {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq.abs() <= tol / (n as f64) {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                // Classic stable rotation computation (Golub & Van Loan).
                let theta = (aqq - app) / (2.0 * apq);
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    -1.0 / (-theta + (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;

                // Apply the rotation J(p, q, θ) on both sides of m …
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = c * mkp - s * mkq;
                    m[(k, q)] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = c * mpk - s * mqk;
                    m[(q, k)] = s * mpk + c * mqk;
                }
                // … and accumulate it into the eigenvector matrix.
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }

    let mut pairs: Vec<(f64, usize)> = (0..n).map(|j| (m[(j, j)], j)).collect();
    pairs.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("NaN eigenvalue"));

    let values: Vec<f64> = pairs.iter().map(|&(val, _)| val).collect();
    let mut vectors = Matrix::zeros(n, n);
    for (new_j, &(_, old_j)) in pairs.iter().enumerate() {
        for i in 0..n {
            vectors[(i, new_j)] = v[(i, old_j)];
        }
    }
    Ok(Eigen { values, vectors })
}

fn off_diagonal_norm(m: &Matrix) -> f64 {
    let n = m.rows();
    let mut s = 0.0;
    for i in 0..n {
        for j in (i + 1)..n {
            s += 2.0 * m[(i, j)] * m[(i, j)];
        }
    }
    s.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reconstruct(e: &Eigen) -> Matrix {
        let n = e.values.len();
        let mut lam = Matrix::zeros(n, n);
        for i in 0..n {
            lam[(i, i)] = e.values[i];
        }
        e.vectors
            .matmul(&lam)
            .unwrap()
            .matmul(&e.vectors.transpose())
            .unwrap()
    }

    #[test]
    fn diagonal_matrix_eigen() {
        let a = Matrix::from_vec(3, 3, vec![3.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 2.0]);
        let e = eigen_symmetric(&a).unwrap();
        assert!((e.values[0] - 3.0).abs() < 1e-12);
        assert!((e.values[1] - 2.0).abs() < 1e-12);
        assert!((e.values[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1 with vectors (1,1)/√2, (1,-1)/√2.
        let a = Matrix::from_vec(2, 2, vec![2.0, 1.0, 1.0, 2.0]);
        let e = eigen_symmetric(&a).unwrap();
        assert!((e.values[0] - 3.0).abs() < 1e-10);
        assert!((e.values[1] - 1.0).abs() < 1e-10);
        let v0 = e.vector(0);
        assert!((v0[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-10);
        assert!(
            (v0[0] - v0[1]).abs() < 1e-10,
            "first eigenvector is (1,1)/sqrt2 up to sign"
        );
    }

    #[test]
    fn reconstruction_error_small() {
        let a = Matrix::from_vec(
            4,
            4,
            vec![
                4.0, 1.0, 0.5, 0.0, 1.0, 3.0, 0.2, 0.1, 0.5, 0.2, 2.0, 0.3, 0.0, 0.1, 0.3, 1.0,
            ],
        );
        let e = eigen_symmetric(&a).unwrap();
        let r = reconstruct(&e);
        for i in 0..4 {
            for j in 0..4 {
                assert!((r[(i, j)] - a[(i, j)]).abs() < 1e-9, "({i},{j})");
            }
        }
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let a = Matrix::from_vec(3, 3, vec![2.0, -1.0, 0.0, -1.0, 2.0, -1.0, 0.0, -1.0, 2.0]);
        let e = eigen_symmetric(&a).unwrap();
        let vtv = e.vectors.transpose().matmul(&e.vectors).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((vtv[(i, j)] - want).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn zero_matrix_ok() {
        let e = eigen_symmetric(&Matrix::zeros(3, 3)).unwrap();
        assert!(e.values.iter().all(|v| v.abs() < 1e-14));
    }

    #[test]
    fn rejects_non_square_and_asymmetric() {
        assert!(matches!(
            eigen_symmetric(&Matrix::zeros(2, 3)),
            Err(LinalgError::NotSquare)
        ));
        let ns = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert!(eigen_symmetric(&ns).is_err());
        assert!(matches!(
            eigen_symmetric(&Matrix::zeros(0, 0)),
            Err(LinalgError::Empty)
        ));
    }

    #[test]
    fn psd_covariance_has_nonnegative_eigenvalues() {
        // Covariance of correlated columns is PSD: eigenvalues >= 0.
        let x = Matrix::from_vec(4, 2, vec![1.0, 2.0, 2.0, 4.1, 3.0, 5.9, 4.0, 8.0]);
        let c = crate::stats::covariance(&x).unwrap();
        let e = eigen_symmetric(&c).unwrap();
        assert!(e.values.iter().all(|&v| v > -1e-10));
    }
}
