//! Cholesky factorisation and SPD linear solves.
//!
//! Used by the dataset simulators to sample correlated Gaussian features
//! (`x = μ + L·z` with `LLᵀ = Σ`), and available for SPD solves.

use crate::{matrix::Matrix, LinalgError, Result};

/// Lower-triangular Cholesky factor `L` with `L Lᵀ = A`.
#[derive(Debug, Clone)]
pub struct Cholesky {
    /// The lower-triangular factor (entries above the diagonal are zero).
    pub l: Matrix,
}

impl Cholesky {
    /// Solve `A x = b` using the stored factor (forward + back substitution).
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.l.rows();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                expected: format!("rhs of length {n}"),
                got: format!("{}", b.len()),
            });
        }
        // Forward: L y = b
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut s = b[i];
            for (j, &yj) in y.iter().enumerate().take(i) {
                s -= self.l[(i, j)] * yj;
            }
            y[i] = s / self.l[(i, i)];
        }
        // Backward: Lᵀ x = y
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = y[i];
            for (j, &xj) in x.iter().enumerate().skip(i + 1) {
                s -= self.l[(j, i)] * xj;
            }
            x[i] = s / self.l[(i, i)];
        }
        Ok(x)
    }

    /// Compute `L v` — maps iid standard normals to correlated samples.
    pub fn l_matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        self.l.matvec(v)
    }
}

/// Factor a symmetric positive-definite matrix.
///
/// A tiny diagonal jitter (`1e-10 * max|A|`) is tolerated to absorb rounding
/// in covariance matrices that are PSD but numerically semi-definite.
pub fn cholesky(a: &Matrix) -> Result<Cholesky> {
    if a.rows() != a.cols() {
        return Err(LinalgError::NotSquare);
    }
    let n = a.rows();
    if n == 0 {
        return Err(LinalgError::Empty);
    }
    let jitter = 1e-10 * a.max_abs().max(1.0);
    let mut l = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut s = a[(i, j)];
            for k in 0..j {
                s -= l[(i, k)] * l[(j, k)];
            }
            if i == j {
                let d = s + jitter;
                if d <= 0.0 {
                    return Err(LinalgError::NotPositiveDefinite);
                }
                l[(i, i)] = d.sqrt();
            } else {
                l[(i, j)] = s / l[(j, j)];
            }
        }
    }
    Ok(Cholesky { l })
}

/// One-shot SPD solve `A x = b`.
pub fn solve_spd(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    cholesky(a)?.solve(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        Matrix::from_vec(3, 3, vec![4.0, 2.0, 0.6, 2.0, 5.0, 1.0, 0.6, 1.0, 3.0])
    }

    #[test]
    fn factor_reconstructs() {
        let a = spd3();
        let ch = cholesky(&a).unwrap();
        let r = ch.l.matmul(&ch.l.transpose()).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert!((r[(i, j)] - a[(i, j)]).abs() < 1e-8, "({i},{j})");
            }
        }
    }

    #[test]
    fn factor_is_lower_triangular() {
        let ch = cholesky(&spd3()).unwrap();
        for i in 0..3 {
            for j in (i + 1)..3 {
                assert_eq!(ch.l[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn solve_recovers_known_solution() {
        let a = spd3();
        let x_true = vec![1.0, -2.0, 0.5];
        let b = a.matvec(&x_true).unwrap();
        let x = solve_spd(&a, &b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-9);
        }
    }

    #[test]
    fn identity_solve_is_identity() {
        let i = Matrix::identity(4);
        let b = vec![1.0, 2.0, 3.0, 4.0];
        let x = solve_spd(&i, &b).unwrap();
        for (xi, bi) in x.iter().zip(&b) {
            assert!((xi - bi).abs() < 1e-8, "{xi} vs {bi}");
        }
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 1.0]); // eigenvalues 3, -1
        assert!(matches!(
            cholesky(&a),
            Err(LinalgError::NotPositiveDefinite)
        ));
    }

    #[test]
    fn rejects_bad_shapes() {
        assert!(matches!(
            cholesky(&Matrix::zeros(2, 3)),
            Err(LinalgError::NotSquare)
        ));
        assert!(matches!(
            cholesky(&Matrix::zeros(0, 0)),
            Err(LinalgError::Empty)
        ));
        let ch = cholesky(&spd3()).unwrap();
        assert!(ch.solve(&[1.0]).is_err());
    }

    #[test]
    fn l_matvec_produces_target_covariance_direction() {
        // L e1 should equal the first column of L.
        let ch = cholesky(&spd3()).unwrap();
        let v = ch.l_matvec(&[1.0, 0.0, 0.0]).unwrap();
        assert!((v[0] - ch.l[(0, 0)]).abs() < 1e-12);
        assert!((v[1] - ch.l[(1, 0)]).abs() < 1e-12);
        assert!((v[2] - ch.l[(2, 0)]).abs() < 1e-12);
    }
}
