//! Row-major dense matrix and the kernels the rest of the workspace uses.

use crate::{LinalgError, Result};

/// A dense, row-major `f64` matrix.
///
/// Rows are tuples, columns are attributes — the orientation every consumer
/// in this workspace expects (feature matrices, covariance inputs, …).
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    data: Vec<f64>,
    rows: usize,
    cols: usize,
}

impl Matrix {
    /// Create a matrix from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match {rows}x{cols}",
            data.len()
        );
        Self { data, rows, cols }
    }

    /// Create a matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            data: vec![0.0; rows * cols],
            rows,
            cols,
        }
    }

    /// Create the `n`-dimensional identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build a matrix from row slices.
    ///
    /// # Panics
    /// Panics if rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        if rows.is_empty() {
            return Self::zeros(0, 0);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "inconsistent row length");
            data.extend_from_slice(r);
        }
        Self {
            data,
            rows: rows.len(),
            cols,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow the flat row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the flat row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consume the matrix, returning its flat row-major buffer. Lets hot
    /// paths recycle the allocation across calls (see `StreamEngine`).
    #[inline]
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Borrow row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        debug_assert!(i < self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        debug_assert!(i < self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copy column `j` into a new vector.
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(j < self.cols, "column {j} out of bounds ({})", self.cols);
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Iterate over rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Gather the given row indices into a new matrix.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut data = Vec::with_capacity(indices.len() * self.cols);
        for &i in indices {
            data.extend_from_slice(self.row(i));
        }
        Matrix::from_vec(indices.len(), self.cols, data)
    }

    /// Gather the given column indices into a new matrix.
    pub fn select_cols(&self, indices: &[usize]) -> Matrix {
        let mut data = Vec::with_capacity(indices.len() * self.rows);
        for i in 0..self.rows {
            let r = self.row(i);
            for &j in indices {
                data.push(r[j]);
            }
        }
        Matrix::from_vec(self.rows, indices.len(), data)
    }

    /// Transpose into a new matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Matrix product `self * other`.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.rows {
            return Err(LinalgError::ShapeMismatch {
                expected: format!("lhs.cols == rhs.rows ({})", self.cols),
                got: format!("{}", other.rows),
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        let n = other.cols;
        // Register-tiled over j: each output row is produced in tiles of
        // four columns whose accumulators live in a `[f64; 4]` the
        // autovectoriser lifts into one SIMD register, with the inner loop
        // streaming k-ascending over the lhs row and contiguous 4-wide
        // slices of the rhs rows. Every output element is still one plain
        // k-ascending sum — bit-identical to the naive triple loop (the
        // tests pin exact equality), unlike a k-unrolled variant whose
        // re-association would drift by ulps.
        for i in 0..self.rows {
            let arow = &self.data[i * self.cols..(i + 1) * self.cols];
            let out_row = out.row_mut(i);
            let mut j = 0;
            while j + 4 <= n {
                let mut acc = [0.0f64; 4];
                for (k, &a) in arow.iter().enumerate() {
                    let b = &other.data[k * n + j..k * n + j + 4];
                    acc[0] += a * b[0];
                    acc[1] += a * b[1];
                    acc[2] += a * b[2];
                    acc[3] += a * b[3];
                }
                out_row[j..j + 4].copy_from_slice(&acc);
                j += 4;
            }
            // Remainder lanes (n % 4 columns): same k-ascending order,
            // one accumulator per column. No zero-skip anywhere — zero
            // coefficients are multiplied through so IEEE propagation
            // (0 × inf = NaN) cannot depend on where a zero lands.
            for (j, out) in out_row.iter_mut().enumerate().skip(j) {
                let mut acc = 0.0;
                for (k, &a) in arow.iter().enumerate() {
                    acc += a * other.data[k * n + j];
                }
                *out = acc;
            }
        }
        Ok(out)
    }

    /// Per-row affine scores `self · coef + bias` — the linear-model batch
    /// scoring kernel. Rows are processed four at a time with four
    /// independent accumulators, so the four fused multiply-add chains
    /// overlap instead of serialising on one accumulator's latency (a
    /// single row's dot product is a loop-carried dependency the
    /// autovectoriser must not re-associate).
    ///
    /// Each row's sum is accumulated k-ascending from 0.0 with the bias
    /// added last — bit-identical to `vector::dot(coef, row) + bias`, so
    /// swapping a per-row dot loop for this kernel cannot move any
    /// decision boundary, even at knife-edge margins.
    pub fn affine_margins(&self, coef: &[f64], bias: f64) -> Result<Vec<f64>> {
        if self.cols != coef.len() {
            return Err(LinalgError::ShapeMismatch {
                expected: format!("coefficient vector of length {}", self.cols),
                got: format!("{}", coef.len()),
            });
        }
        let d = self.cols;
        let mut out = Vec::with_capacity(self.rows);
        let mut i = 0;
        while i + 4 <= self.rows {
            let base = i * d;
            let r0 = &self.data[base..base + d];
            let r1 = &self.data[base + d..base + 2 * d];
            let r2 = &self.data[base + 2 * d..base + 3 * d];
            let r3 = &self.data[base + 3 * d..base + 4 * d];
            let mut acc = [0.0f64; 4];
            for (k, &c) in coef.iter().enumerate() {
                acc[0] += r0[k] * c;
                acc[1] += r1[k] * c;
                acc[2] += r2[k] * c;
                acc[3] += r3[k] * c;
            }
            out.extend_from_slice(&[acc[0] + bias, acc[1] + bias, acc[2] + bias, acc[3] + bias]);
            i += 4;
        }
        for i in i..self.rows {
            out.push(crate::vector::dot(self.row(i), coef) + bias);
        }
        Ok(out)
    }

    /// Matrix-vector product `self * v`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if self.cols != v.len() {
            return Err(LinalgError::ShapeMismatch {
                expected: format!("vector of length {}", self.cols),
                got: format!("{}", v.len()),
            });
        }
        Ok(self
            .iter_rows()
            .map(|row| crate::vector::dot(row, v))
            .collect())
    }

    /// `selfᵀ * v` without materialising the transpose.
    pub fn t_matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if self.rows != v.len() {
            return Err(LinalgError::ShapeMismatch {
                expected: format!("vector of length {}", self.rows),
                got: format!("{}", v.len()),
            });
        }
        let mut out = vec![0.0; self.cols];
        for (row, &vi) in self.iter_rows().zip(v) {
            if vi == 0.0 {
                continue;
            }
            for (o, &x) in out.iter_mut().zip(row) {
                *o += vi * x;
            }
        }
        Ok(out)
    }

    /// Elementwise in-place scale.
    pub fn scale(&mut self, s: f64) {
        for x in &mut self.data {
            *x *= s;
        }
    }

    /// Append the rows of `other` below `self`.
    pub fn vstack(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.cols && self.rows != 0 && other.rows != 0 {
            return Err(LinalgError::ShapeMismatch {
                expected: format!("{} columns", self.cols),
                got: format!("{}", other.cols),
            });
        }
        let cols = if self.rows == 0 {
            other.cols
        } else {
            self.cols
        };
        let mut data = Vec::with_capacity((self.rows + other.rows) * cols);
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Ok(Matrix::from_vec(self.rows + other.rows, cols, data))
    }

    /// Maximum absolute entry (`∞`-norm over elements); 0 for empty.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &x| m.max(x.abs()))
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Whether the matrix is numerically symmetric within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m2x3() -> Matrix {
        Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
    }

    #[test]
    fn from_vec_shape_and_index() {
        let m = m2x3();
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(1, 2)], 6.0);
    }

    #[test]
    #[should_panic]
    fn from_vec_rejects_bad_length() {
        let _ = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn row_and_col_access() {
        let m = m2x3();
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.col(1), vec![2.0, 5.0]);
    }

    #[test]
    fn identity_is_diagonal() {
        let i = Matrix::identity(3);
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(i[(r, c)], if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn transpose_involution() {
        let m = m2x3();
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn transpose_swaps_entries() {
        let t = m2x3().transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert_eq!(t[(2, 0)], 3.0);
        assert_eq!(t[(0, 1)], 4.0);
    }

    #[test]
    fn matmul_known_product() {
        let a = m2x3();
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.rows(), 2);
        assert_eq!(c.cols(), 2);
        assert_eq!(c[(0, 0)], 58.0);
        assert_eq!(c[(0, 1)], 64.0);
        assert_eq!(c[(1, 0)], 139.0);
        assert_eq!(c[(1, 1)], 154.0);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = m2x3();
        let i = Matrix::identity(3);
        assert_eq!(a.matmul(&i).unwrap(), a);
    }

    /// The obviously-correct triple loop the unrolled kernel must match.
    fn matmul_naive(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                for k in 0..a.cols() {
                    out[(i, j)] += a[(i, k)] * b[(k, j)];
                }
            }
        }
        out
    }

    #[test]
    fn matmul_matches_naive_reference_across_shapes() {
        // Deterministic pseudo-random entries; shapes chosen to hit full
        // 4-wide column tiles, every remainder-lane width (n % 4 ∈
        // {0,1,2,3}), and degenerate dims. The tiled kernel accumulates
        // each output element k-ascending exactly like the naive loop, so
        // the comparison is exact bit equality, not a tolerance.
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 4, 5),
            (5, 7, 3),
            (8, 8, 8),
            (2, 13, 6),
            (6, 5, 1),
            (3, 9, 4),
            (4, 2, 7),
            (2, 11, 10),
        ] {
            let a = Matrix::from_vec(m, k, (0..m * k).map(|_| next()).collect());
            let b = Matrix::from_vec(k, n, (0..k * n).map(|_| next()).collect());
            let fast = a.matmul(&b).unwrap();
            let slow = matmul_naive(&a, &b);
            for i in 0..m {
                for j in 0..n {
                    assert_eq!(
                        fast[(i, j)].to_bits(),
                        slow[(i, j)].to_bits(),
                        "({m}x{k})*({k}x{n}) entry ({i},{j}): {} vs {}",
                        fast[(i, j)],
                        slow[(i, j)]
                    );
                }
            }
        }
    }

    #[test]
    fn matmul_zero_times_nonfinite_is_position_independent() {
        // IEEE semantics must not depend on where a zero coefficient lands
        // along k, nor on whether the output column sits in a 4-wide tile
        // or a remainder lane.
        for n_cols in [1usize, 4, 6] {
            for zero_at in [0usize, 4] {
                let mut a_row = vec![1.0; 5];
                a_row[zero_at] = 0.0;
                let a = Matrix::from_vec(1, 5, a_row);
                let mut b = Matrix::zeros(5, n_cols);
                for k in 0..5 {
                    for j in 0..n_cols {
                        b[(k, j)] = 1.0;
                    }
                }
                for j in 0..n_cols {
                    b[(zero_at, j)] = f64::INFINITY;
                }
                let c = a.matmul(&b).unwrap();
                for j in 0..n_cols {
                    assert!(
                        c[(0, j)].is_nan(),
                        "0 * inf at k={zero_at}, col {j} of {n_cols} must be NaN"
                    );
                }
            }
        }
    }

    #[test]
    fn affine_margins_matches_per_row_dot_bit_exactly() {
        // Row counts 1..=9 cover both the 4-row tiles and every remainder
        // lane (rows % 4 ∈ {0,1,2,3}); entries include negatives and
        // magnitudes that make re-association detectable.
        let mut state = 0xD1B5_4A32_D192_ED03u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0) * 3.0
        };
        for rows in 1..=9usize {
            for d in [1usize, 3, 8] {
                let x = Matrix::from_vec(rows, d, (0..rows * d).map(|_| next()).collect());
                let coef: Vec<f64> = (0..d).map(|_| next()).collect();
                let bias = next();
                let fast = x.affine_margins(&coef, bias).unwrap();
                for (i, row) in x.iter_rows().enumerate() {
                    let slow = crate::vector::dot(&coef, row) + bias;
                    assert_eq!(
                        fast[i].to_bits(),
                        slow.to_bits(),
                        "rows={rows} d={d} row {i}: {} vs {slow}",
                        fast[i]
                    );
                }
            }
        }
    }

    #[test]
    fn affine_margins_propagates_nonfinite_rows() {
        let x = Matrix::from_vec(2, 2, vec![f64::INFINITY, 0.0, 1.0, f64::NAN]);
        let m = x.affine_margins(&[0.0, 1.0], 0.0).unwrap();
        assert!(m[0].is_nan(), "inf * 0 must surface as NaN");
        assert!(m[1].is_nan());
        assert!(matches!(
            x.affine_margins(&[1.0], 0.0),
            Err(LinalgError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn matmul_shape_mismatch_errors() {
        let a = m2x3();
        let b = Matrix::zeros(2, 2);
        assert!(matches!(
            a.matmul(&b),
            Err(LinalgError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn matvec_matches_manual() {
        let a = m2x3();
        let v = vec![1.0, 0.0, -1.0];
        assert_eq!(a.matvec(&v).unwrap(), vec![-2.0, -2.0]);
    }

    #[test]
    fn t_matvec_matches_transpose_matvec() {
        let a = m2x3();
        let v = vec![2.0, -1.0];
        let direct = a.t_matvec(&v).unwrap();
        let via_transpose = a.transpose().matvec(&v).unwrap();
        assert_eq!(direct, via_transpose);
    }

    #[test]
    fn select_rows_gathers() {
        let a = m2x3();
        let sel = a.select_rows(&[1, 1, 0]);
        assert_eq!(sel.rows(), 3);
        assert_eq!(sel.row(0), &[4.0, 5.0, 6.0]);
        assert_eq!(sel.row(2), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn select_cols_gathers() {
        let a = m2x3();
        let sel = a.select_cols(&[2, 0]);
        assert_eq!(sel.cols(), 2);
        assert_eq!(sel.row(0), &[3.0, 1.0]);
        assert_eq!(sel.row(1), &[6.0, 4.0]);
    }

    #[test]
    fn vstack_concatenates() {
        let a = m2x3();
        let b = Matrix::from_vec(1, 3, vec![7.0, 8.0, 9.0]);
        let s = a.vstack(&b).unwrap();
        assert_eq!(s.rows(), 3);
        assert_eq!(s.row(2), &[7.0, 8.0, 9.0]);
    }

    #[test]
    fn symmetric_detection() {
        let s = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 3.0]);
        assert!(s.is_symmetric(1e-12));
        let ns = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.5, 3.0]);
        assert!(!ns.is_symmetric(1e-12));
        assert!(!m2x3().is_symmetric(1e-12));
    }

    #[test]
    fn norms() {
        let m = Matrix::from_vec(1, 2, vec![3.0, -4.0]);
        assert_eq!(m.frobenius_norm(), 5.0);
        assert_eq!(m.max_abs(), 4.0);
    }

    #[test]
    fn scale_in_place() {
        let mut m = m2x3();
        m.scale(2.0);
        assert_eq!(m[(1, 2)], 12.0);
    }
}
