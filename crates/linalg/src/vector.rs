//! Slice-level vector helpers shared across the workspace.

/// Dot product of two equal-length slices.
///
/// # Panics
/// Panics in debug builds if lengths differ; in release the shorter length
/// wins (the zip truncates), so callers must pass equal lengths.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// `y += alpha * x` in place.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Euclidean norm.
#[inline]
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Squared Euclidean distance between two points.
#[inline]
pub fn dist2_sq(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

/// Normalise `a` to unit Euclidean length in place; leaves zero vectors as-is.
pub fn normalize(a: &mut [f64]) {
    let n = norm2(a);
    if n > 0.0 {
        for x in a.iter_mut() {
            *x /= n;
        }
    }
}

/// Index of the maximum element (first on ties). `None` when empty.
pub fn argmax(a: &[f64]) -> Option<usize> {
    if a.is_empty() {
        return None;
    }
    let mut best = 0;
    for (i, &x) in a.iter().enumerate().skip(1) {
        if x > a[best] {
            best = i;
        }
    }
    Some(best)
}

/// Index of the minimum element (first on ties). `None` when empty.
pub fn argmin(a: &[f64]) -> Option<usize> {
    if a.is_empty() {
        return None;
    }
    let mut best = 0;
    for (i, &x) in a.iter().enumerate().skip(1) {
        if x < a[best] {
            best = i;
        }
    }
    Some(best)
}

/// Arithmetic mean; 0 for empty input.
pub fn mean(a: &[f64]) -> f64 {
    if a.is_empty() {
        0.0
    } else {
        a.iter().sum::<f64>() / a.len() as f64
    }
}

/// Population variance (divides by n); 0 for fewer than 2 elements.
pub fn variance(a: &[f64]) -> f64 {
    if a.len() < 2 {
        return 0.0;
    }
    let m = mean(a);
    a.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / a.len() as f64
}

/// Population standard deviation.
pub fn std_dev(a: &[f64]) -> f64 {
    variance(a).sqrt()
}

/// Weighted mean; 0 when total weight is 0.
pub fn weighted_mean(a: &[f64], w: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), w.len());
    let tot: f64 = w.iter().sum();
    if tot <= 0.0 {
        return 0.0;
    }
    a.iter().zip(w).map(|(x, wi)| x * wi).sum::<f64>() / tot
}

/// The `q`-quantile (0 ≤ q ≤ 1) by linear interpolation on sorted copies.
pub fn quantile(a: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
    assert!(!a.is_empty(), "quantile of empty slice");
    let mut v: Vec<f64> = a.to_vec();
    v.sort_by(|x, y| x.partial_cmp(y).expect("NaN in quantile input"));
    let pos = q * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let frac = pos - lo as f64;
        v[lo] * (1.0 - frac) + v[hi] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_known() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, -1.0], &mut y);
        assert_eq!(y, vec![7.0, -1.0]);
    }

    #[test]
    fn norm_and_distance() {
        assert_eq!(norm2(&[3.0, 4.0]), 5.0);
        assert_eq!(dist2_sq(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
    }

    #[test]
    fn normalize_unit_length() {
        let mut v = vec![3.0, 4.0];
        normalize(&mut v);
        assert!((norm2(&v) - 1.0).abs() < 1e-12);
        let mut z = vec![0.0, 0.0];
        normalize(&mut z);
        assert_eq!(z, vec![0.0, 0.0]);
    }

    #[test]
    fn argmax_argmin_ties_and_empty() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 2.0]), Some(1));
        assert_eq!(argmin(&[1.0, -3.0, -3.0]), Some(1));
        assert_eq!(argmax(&[]), None);
        assert_eq!(argmin(&[]), None);
    }

    #[test]
    fn mean_variance_std() {
        let a = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&a) - 5.0).abs() < 1e-12);
        assert!((variance(&a) - 4.0).abs() < 1e-12);
        assert!((std_dev(&a) - 2.0).abs() < 1e-12);
        assert_eq!(variance(&[1.0]), 0.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn weighted_mean_matches_manual() {
        let a = [1.0, 2.0, 10.0];
        let w = [1.0, 1.0, 0.0];
        assert!((weighted_mean(&a, &w) - 1.5).abs() < 1e-12);
        assert_eq!(weighted_mean(&a, &[0.0; 3]), 0.0);
    }

    #[test]
    fn quantile_interpolates() {
        let a = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&a, 0.0), 1.0);
        assert_eq!(quantile(&a, 1.0), 4.0);
        assert!((quantile(&a, 0.5) - 2.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn quantile_rejects_out_of_range() {
        let _ = quantile(&[1.0], 1.5);
    }
}
