//! Column statistics: means, (weighted) covariance, standardisation.
//!
//! Conformance-constraint discovery standardises the numeric attributes and
//! eigendecomposes their covariance; these are the exact kernels it uses.

use crate::{matrix::Matrix, LinalgError, Result};

/// Per-column means of a data matrix (rows = tuples).
pub fn column_means(x: &Matrix) -> Vec<f64> {
    let n = x.rows();
    let mut means = vec![0.0; x.cols()];
    if n == 0 {
        return means;
    }
    for row in x.iter_rows() {
        for (m, &v) in means.iter_mut().zip(row) {
            *m += v;
        }
    }
    for m in &mut means {
        *m /= n as f64;
    }
    means
}

/// Weighted per-column means; weights are renormalised internally.
pub fn weighted_column_means(x: &Matrix, w: &[f64]) -> Result<Vec<f64>> {
    if w.len() != x.rows() {
        return Err(LinalgError::ShapeMismatch {
            expected: format!("{} weights", x.rows()),
            got: format!("{}", w.len()),
        });
    }
    let tot: f64 = w.iter().sum();
    let mut means = vec![0.0; x.cols()];
    if tot <= 0.0 {
        return Ok(means);
    }
    for (row, &wi) in x.iter_rows().zip(w) {
        for (m, &v) in means.iter_mut().zip(row) {
            *m += wi * v;
        }
    }
    for m in &mut means {
        *m /= tot;
    }
    Ok(means)
}

/// Population covariance matrix (divides by n) of the columns of `x`.
pub fn covariance(x: &Matrix) -> Result<Matrix> {
    let n = x.rows();
    if n == 0 {
        return Err(LinalgError::Empty);
    }
    let means = column_means(x);
    let d = x.cols();
    let mut cov = Matrix::zeros(d, d);
    for row in x.iter_rows() {
        for i in 0..d {
            let di = row[i] - means[i];
            if di == 0.0 {
                continue;
            }
            let crow = cov.row_mut(i);
            for j in i..d {
                crow[j] += di * (row[j] - means[j]);
            }
        }
    }
    let nf = n as f64;
    for i in 0..d {
        for j in i..d {
            let v = cov[(i, j)] / nf;
            cov[(i, j)] = v;
            cov[(j, i)] = v;
        }
    }
    Ok(cov)
}

/// Weighted population covariance (weights renormalised to sum 1).
pub fn weighted_covariance(x: &Matrix, w: &[f64]) -> Result<Matrix> {
    if w.len() != x.rows() {
        return Err(LinalgError::ShapeMismatch {
            expected: format!("{} weights", x.rows()),
            got: format!("{}", w.len()),
        });
    }
    let tot: f64 = w.iter().sum();
    if tot <= 0.0 {
        return Err(LinalgError::Empty);
    }
    let means = weighted_column_means(x, w)?;
    let d = x.cols();
    let mut cov = Matrix::zeros(d, d);
    for (row, &wi) in x.iter_rows().zip(w) {
        if wi == 0.0 {
            continue;
        }
        for i in 0..d {
            let di = wi * (row[i] - means[i]);
            if di == 0.0 {
                continue;
            }
            let crow = cov.row_mut(i);
            for j in i..d {
                crow[j] += di * (row[j] - means[j]);
            }
        }
    }
    for i in 0..d {
        for j in i..d {
            let v = cov[(i, j)] / tot;
            cov[(i, j)] = v;
            cov[(j, i)] = v;
        }
    }
    Ok(cov)
}

/// Fitted standardisation parameters (per-column mean and std).
///
/// Constant columns get `std = 1` so transforming them is a no-op shift —
/// the behaviour downstream profiling expects (a constant attribute carries
/// no drift signal but must not produce NaNs).
#[derive(Debug, Clone, PartialEq)]
pub struct Standardizer {
    /// Per-column means subtracted by [`Standardizer::transform`].
    pub means: Vec<f64>,
    /// Per-column standard deviations divided by [`Standardizer::transform`].
    pub stds: Vec<f64>,
}

impl Standardizer {
    /// Fit means/stds on `x`.
    pub fn fit(x: &Matrix) -> Self {
        let means = column_means(x);
        let n = x.rows().max(1) as f64;
        let mut vars = vec![0.0; x.cols()];
        for row in x.iter_rows() {
            for ((v, &m), &xv) in vars.iter_mut().zip(&means).zip(row) {
                let d = xv - m;
                *v += d * d;
            }
        }
        let stds = vars
            .into_iter()
            .map(|v| {
                let s = (v / n).sqrt();
                if s > 1e-12 {
                    s
                } else {
                    1.0
                }
            })
            .collect();
        Self { means, stds }
    }

    /// Apply `(x - mean) / std` columnwise, returning a new matrix.
    pub fn transform(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols(), self.means.len(), "column count mismatch");
        let mut out = x.clone();
        for i in 0..out.rows() {
            let row = out.row_mut(i);
            for ((v, &m), &s) in row.iter_mut().zip(&self.means).zip(&self.stds) {
                *v = (*v - m) / s;
            }
        }
        out
    }

    /// Apply to a single point in place.
    pub fn transform_point(&self, p: &mut [f64]) {
        debug_assert_eq!(p.len(), self.means.len());
        for ((v, &m), &s) in p.iter_mut().zip(&self.means).zip(&self.stds) {
            *v = (*v - m) / s;
        }
    }
}

/// Fit-and-transform convenience.
pub fn standardize(x: &Matrix) -> (Matrix, Standardizer) {
    let s = Standardizer::fit(x);
    (s.transform(x), s)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        // columns: [1,2,3,4], [2,4,6,8]
        Matrix::from_vec(4, 2, vec![1.0, 2.0, 2.0, 4.0, 3.0, 6.0, 4.0, 8.0])
    }

    #[test]
    fn means_match_manual() {
        assert_eq!(column_means(&sample()), vec![2.5, 5.0]);
        assert_eq!(column_means(&Matrix::zeros(0, 2)), vec![0.0, 0.0]);
    }

    #[test]
    fn covariance_of_perfectly_correlated_columns() {
        let c = covariance(&sample()).unwrap();
        // var(col0) = 1.25 (population), col1 = 2*col0 so cov = 2.5, var = 5.
        assert!((c[(0, 0)] - 1.25).abs() < 1e-12);
        assert!((c[(0, 1)] - 2.5).abs() < 1e-12);
        assert!((c[(1, 0)] - 2.5).abs() < 1e-12);
        assert!((c[(1, 1)] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn covariance_rejects_empty() {
        assert!(matches!(
            covariance(&Matrix::zeros(0, 2)),
            Err(LinalgError::Empty)
        ));
    }

    #[test]
    fn weighted_mean_reduces_to_unweighted() {
        let x = sample();
        let w = vec![1.0; 4];
        assert_eq!(weighted_column_means(&x, &w).unwrap(), column_means(&x));
    }

    #[test]
    fn weighted_covariance_reduces_to_unweighted() {
        let x = sample();
        let w = vec![0.25; 4];
        let wc = weighted_covariance(&x, &w).unwrap();
        let c = covariance(&x).unwrap();
        for i in 0..2 {
            for j in 0..2 {
                assert!((wc[(i, j)] - c[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn weighted_covariance_ignores_zero_weight_rows() {
        let x = Matrix::from_vec(3, 1, vec![0.0, 1.0, 100.0]);
        let w = vec![1.0, 1.0, 0.0];
        let wc = weighted_covariance(&x, &w).unwrap();
        assert!((wc[(0, 0)] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn standardizer_zero_mean_unit_var() {
        let (z, s) = standardize(&sample());
        let zm = column_means(&z);
        assert!(zm.iter().all(|m| m.abs() < 1e-12));
        let zc = covariance(&z).unwrap();
        assert!((zc[(0, 0)] - 1.0).abs() < 1e-9);
        assert!((zc[(1, 1)] - 1.0).abs() < 1e-9);
        // Round-trip a point.
        let mut p = vec![2.5, 5.0];
        s.transform_point(&mut p);
        assert!(p.iter().all(|v| v.abs() < 1e-12));
    }

    #[test]
    fn standardizer_constant_column_is_safe() {
        let x = Matrix::from_vec(3, 1, vec![7.0, 7.0, 7.0]);
        let (z, s) = standardize(&x);
        assert_eq!(s.stds, vec![1.0]);
        assert!(z.as_slice().iter().all(|v| v.abs() < 1e-12));
    }

    #[test]
    fn shape_mismatch_errors() {
        let x = sample();
        assert!(weighted_column_means(&x, &[1.0]).is_err());
        assert!(weighted_covariance(&x, &[1.0]).is_err());
    }
}
